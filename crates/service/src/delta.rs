//! The per-partition write-ahead delta log, stored as append-only
//! [`TrajStore`] arena segments.
//!
//! Writes never touch a frozen RP-Trie. Each partition owns an
//! append-only log of entries; a global tombstone map `id -> sequence`
//! records, for every id ever written, the sequence of its *latest* write
//! (insert *or* delete). Together they give upsert/delete semantics
//! without mutating anything in place:
//!
//! * a **frozen** trajectory is live iff its id has no tombstone;
//! * a **delta** entry is live iff its sequence is >= the tombstone
//!   sequence for its id (only the latest write per id qualifies; a
//!   later delete out-sequences every earlier entry).
//!
//! # Arena segments
//!
//! Entries live in [`DeltaSegment`]s: each segment packs its trajectories
//! into one flat [`TrajStore`] arena plus a parallel `(sequence,
//! summary)` table — the same contiguous-scan layout the frozen partitions
//! use, extended to the write path. A query-time delta scan therefore
//! walks linear memory even through a large uncompacted write burst;
//! [`Trajectory`](repose_model::Trajectory) remains the I/O edge only
//! (the points are copied into the arena at insert time and the owned
//! value is dropped).
//!
//! Snapshots are O(#segments): a query clones the `Arc` per segment. The
//! writer appends *in place* into the newest segment while it is uniquely
//! owned; the moment a snapshot is outstanding (`Arc` shared), the next
//! write starts a fresh segment — so snapshots are immutable views and
//! writes never copy old data. Between snapshots, one segment grows
//! contiguously.
//!
//! Each entry's [`TrajSummary`] is computed once at insert time — the same
//! per-member prefilter summaries the frozen tries store in their leaves —
//! so the query-time delta scan gets O(1) lower bounds without re-walking
//! candidate trajectories.
//!
//! Because the log is append-only, compaction can snapshot a prefix,
//! rebuild offline, and then drain exactly that prefix — concurrent
//! writes land beyond the snapshot length and survive untouched.

use repose_distance::TrajSummary;
use repose_model::{Point, TrajId, TrajStore};
use std::collections::HashMap;
use std::sync::Arc;

/// One immutable-once-shared run of delta entries: a flat trajectory
/// arena plus per-slot write metadata.
#[derive(Debug, Default)]
pub(crate) struct DeltaSegment {
    /// The segment's trajectories (slot order = append order).
    pub(crate) store: TrajStore,
    /// `(sequence, summary)` for each slot of `store`.
    pub(crate) meta: Vec<(u64, TrajSummary)>,
}

impl DeltaSegment {
    /// Whether slot `slot` is live under `tombstones`.
    pub(crate) fn is_live(&self, slot: usize, tombstones: &HashMap<TrajId, u64>) -> bool {
        let seq = self.meta[slot].0;
        tombstones
            .get(&self.store.id(slot))
            .is_none_or(|&ts| seq >= ts)
    }
}

/// A query/compaction snapshot of one partition's log: shared immutable
/// segments, in append order.
pub(crate) type DeltaSnapshot = Vec<Arc<DeltaSegment>>;

/// Total entries across a snapshot's segments.
pub(crate) fn snapshot_len(snapshot: &DeltaSnapshot) -> usize {
    snapshot.iter().map(|s| s.store.len()).sum()
}

/// One partition's append-only write log.
#[derive(Debug, Default)]
pub(crate) struct DeltaLog {
    segments: Vec<Arc<DeltaSegment>>,
    /// Total entries across segments (including superseded ones).
    entries: usize,
    /// Monotone write epoch: bumped on every push, never reset. Compaction
    /// records the epoch it covered; `epoch > compacted_epoch` means this
    /// partition's log changed since the last compact (the incremental-
    /// compaction dirtiness test).
    epoch: u64,
    /// Set by [`DeltaLog::seal`]: the next push must start a fresh
    /// segment even if the tail is uniquely owned.
    sealed: bool,
}

impl DeltaLog {
    /// Appends a write with its global sequence number and its
    /// insert-time prefilter summary. Appends in place while the newest
    /// segment is uniquely owned; starts a new segment when a snapshot
    /// still references it (or after a [`DeltaLog::seal`]).
    pub(crate) fn push(&mut self, seq: u64, id: TrajId, points: &[Point], summary: TrajSummary) {
        let appended = !self.sealed
            && match self.segments.last_mut().map(Arc::get_mut) {
                Some(Some(seg)) => {
                    seg.store.push(id, points);
                    seg.meta.push((seq, summary));
                    true
                }
                _ => false,
            };
        if !appended {
            let mut seg = DeltaSegment::default();
            seg.store.push(id, points);
            seg.meta.push((seq, summary));
            self.segments.push(Arc::new(seg));
            self.sealed = false;
        }
        self.entries += 1;
        self.epoch += 1;
    }

    /// Seals the current tail segment: the next push starts a fresh one.
    /// Used when replaying a WAL segment-seal record, so recovered segment
    /// boundaries mirror the logged ones.
    pub(crate) fn seal(&mut self) {
        if !self.segments.is_empty() {
            self.sealed = true;
        }
    }

    /// Number of log entries (including superseded ones).
    pub(crate) fn len(&self) -> usize {
        self.entries
    }

    /// The log's write epoch (see the field docs).
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch
    }

    /// O(#segments) immutable snapshot: `Arc` clones only. Any write after
    /// this call lands in a segment the snapshot does not reference.
    pub(crate) fn snapshot(&self) -> DeltaSnapshot {
        self.segments.clone()
    }

    /// Number of live entries under `tombstones`.
    pub(crate) fn live_len(&self, tombstones: &HashMap<TrajId, u64>) -> usize {
        self.segments
            .iter()
            .map(|seg| {
                (0..seg.store.len())
                    .filter(|&slot| seg.is_live(slot, tombstones))
                    .count()
            })
            .sum()
    }

    /// Removes the first `n` entries — the compacted prefix. Fully covered
    /// segments are dropped whole; a partially covered segment's tail is
    /// re-packed into a fresh arena (arena-to-arena range copies).
    pub(crate) fn drain_prefix(&mut self, mut n: usize) {
        n = n.min(self.entries);
        self.entries -= n;
        let mut kept: Vec<Arc<DeltaSegment>> = Vec::with_capacity(self.segments.len());
        for seg in self.segments.drain(..) {
            if n >= seg.store.len() {
                n -= seg.store.len();
                continue;
            }
            if n > 0 {
                let mut tail = DeltaSegment::default();
                for slot in n..seg.store.len() {
                    tail.store.push_from(&seg.store, slot);
                    tail.meta.push(seg.meta[slot]);
                }
                kept.push(Arc::new(tail));
                n = 0;
            } else {
                kept.push(seg);
            }
        }
        self.segments = kept;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repose_distance::MeasureParams;
    use repose_model::Point;

    fn push(log: &mut DeltaLog, seq: u64, id: TrajId) {
        let points = vec![Point::new(id as f64, 0.0)];
        let summary = MeasureParams::default().summary_of(&points);
        log.push(seq, id, &points, summary);
    }

    fn live_ids(log: &DeltaLog, tomb: &HashMap<TrajId, u64>) -> Vec<TrajId> {
        log.snapshot()
            .iter()
            .flat_map(|seg| {
                (0..seg.store.len())
                    .filter(|&slot| seg.is_live(slot, tomb))
                    .map(|slot| seg.store.id(slot))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    #[test]
    fn last_write_wins() {
        let mut log = DeltaLog::default();
        let mut tomb = HashMap::new();
        // upsert id 1 twice: only the later entry is live
        push(&mut log, 1, 1);
        tomb.insert(1, 1);
        push(&mut log, 3, 1);
        tomb.insert(1, 3);
        assert_eq!(live_ids(&log, &tomb), vec![1]);
        assert_eq!(log.live_len(&tomb), 1);
    }

    #[test]
    fn delete_out_sequences_insert() {
        let mut log = DeltaLog::default();
        let mut tomb = HashMap::new();
        push(&mut log, 1, 2);
        tomb.insert(2, 1);
        // delete at seq 2
        tomb.insert(2, 2);
        assert!(live_ids(&log, &tomb).is_empty());
        // re-insert at seq 3
        push(&mut log, 3, 2);
        tomb.insert(2, 3);
        assert_eq!(live_ids(&log, &tomb), vec![2]);
    }

    #[test]
    fn drain_prefix_keeps_tail() {
        let mut log = DeltaLog::default();
        push(&mut log, 1, 1);
        push(&mut log, 2, 2);
        push(&mut log, 3, 3);
        log.drain_prefix(2);
        assert_eq!(log.len(), 1);
        assert_eq!(log.snapshot()[0].store.id(0), 3);
        log.drain_prefix(10); // over-long drain is clamped
        assert_eq!(log.len(), 0);
    }

    #[test]
    fn writes_extend_one_arena_until_snapshotted() {
        let mut log = DeltaLog::default();
        push(&mut log, 1, 1);
        push(&mut log, 2, 2);
        // No snapshot outstanding: both writes share one contiguous arena.
        assert_eq!(log.snapshot().len(), 1);
        assert_eq!(log.snapshot()[0].store.len(), 2);

        // Hold a snapshot across a write: the write must not mutate the
        // shared segment; it starts a new one.
        let snap = log.snapshot();
        push(&mut log, 3, 3);
        assert_eq!(snap[0].store.len(), 2, "snapshot changed under a writer");
        let now = log.snapshot();
        assert_eq!(now.len(), 2);
        assert_eq!(now[1].store.id(0), 3);
        assert_eq!(log.len(), 3);

        // Snapshot released: appends go in place again.
        drop(snap);
        drop(now);
        push(&mut log, 4, 4);
        assert_eq!(log.snapshot().len(), 2, "writer should reuse the unshared tail");
    }

    #[test]
    fn drain_prefix_splits_a_segment() {
        let mut log = DeltaLog::default();
        for i in 0..5 {
            push(&mut log, i + 1, i);
        }
        assert_eq!(log.snapshot().len(), 1);
        log.drain_prefix(3); // mid-segment
        assert_eq!(log.len(), 2);
        let segs = log.snapshot();
        assert_eq!(snapshot_len(&segs), 2);
        assert_eq!(segs[0].store.id(0), 3);
        assert_eq!(segs[0].store.id(1), 4);
    }

    #[test]
    fn entries_carry_insert_time_summaries() {
        let mut log = DeltaLog::default();
        let points = vec![Point::new(9.0, 0.0)];
        let summary = MeasureParams::default().summary_of(&points);
        log.push(1, 9, &points, summary);
        let segs = log.snapshot();
        assert_eq!(segs[0].meta[0].1.len, 1);
        assert_eq!(segs[0].meta[0].1.first, points[0]);
    }

    #[test]
    fn seal_forces_a_fresh_segment() {
        let mut log = DeltaLog::default();
        push(&mut log, 1, 1);
        push(&mut log, 2, 2);
        log.seal();
        push(&mut log, 3, 3);
        let segs = log.snapshot();
        assert_eq!(segs.len(), 2, "post-seal write starts a new segment");
        assert_eq!(segs[0].store.len(), 2);
        assert_eq!(segs[1].store.id(0), 3);
        // Sealing an empty log is a no-op; the first push creates segment 1.
        let mut empty = DeltaLog::default();
        empty.seal();
        push(&mut empty, 1, 1);
        assert_eq!(empty.snapshot().len(), 1);
    }

    #[test]
    fn epoch_counts_every_push_and_survives_drain() {
        let mut log = DeltaLog::default();
        assert_eq!(log.epoch(), 0);
        push(&mut log, 1, 1);
        push(&mut log, 2, 2);
        assert_eq!(log.epoch(), 2);
        log.drain_prefix(2);
        assert_eq!(log.epoch(), 2, "epoch is monotone, not reset by drains");
        push(&mut log, 3, 3);
        assert_eq!(log.epoch(), 3);
    }
}
