//! The per-partition write-ahead delta log.
//!
//! Writes never touch a frozen RP-Trie. Each partition owns an
//! append-only log of `(sequence, trajectory, summary)` entries; a global
//! tombstone map `id -> sequence` records, for every id ever written,
//! the sequence of its *latest* write. Together they give upsert/delete
//! semantics without mutating anything in place:
//!
//! * a **frozen** trajectory is live iff its id has no tombstone;
//! * a **delta** entry is live iff its sequence is >= the tombstone
//!   sequence for its id (only the latest write per id qualifies; a
//!   later delete out-sequences every earlier entry).
//!
//! Each entry carries its [`TrajSummary`], computed once at insert time —
//! the same per-member prefilter summaries the frozen tries store in their
//! leaves — so the query-time delta scan gets O(1) lower bounds without
//! re-walking candidate trajectories.
//!
//! Because the log is append-only, compaction can snapshot a prefix,
//! rebuild offline, and then drain exactly that prefix — concurrent
//! writes land beyond the snapshot length and survive untouched.

use repose_distance::TrajSummary;
use repose_model::{TrajId, Trajectory};
use std::collections::HashMap;
use std::sync::Arc;

/// One live delta candidate as seen by a query snapshot.
pub(crate) type LiveEntry = (Arc<Trajectory>, TrajSummary);

/// One partition's append-only write log.
#[derive(Debug, Default, Clone)]
pub(crate) struct DeltaLog {
    entries: Vec<(u64, Arc<Trajectory>, TrajSummary)>,
}

impl DeltaLog {
    /// Appends a write with its global sequence number and its
    /// insert-time prefilter summary.
    pub(crate) fn push(&mut self, seq: u64, traj: Arc<Trajectory>, summary: TrajSummary) {
        self.entries.push((seq, traj, summary));
    }

    /// Number of log entries (including superseded ones).
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Clones the live entries under `tombstones` (cheap: `Arc` clones
    /// plus `Copy` summaries).
    pub(crate) fn live(&self, tombstones: &HashMap<TrajId, u64>) -> Vec<LiveEntry> {
        self.entries
            .iter()
            .filter(|(seq, t, _)| tombstones.get(&t.id).is_none_or(|&ts| *seq >= ts))
            .map(|(_, t, s)| (Arc::clone(t), *s))
            .collect()
    }

    /// Snapshot of the raw log (for compaction).
    pub(crate) fn snapshot(&self) -> Vec<(u64, Arc<Trajectory>)> {
        self.entries
            .iter()
            .map(|(seq, t, _)| (*seq, Arc::clone(t)))
            .collect()
    }

    /// Removes the first `n` entries — the compacted prefix.
    pub(crate) fn drain_prefix(&mut self, n: usize) {
        self.entries.drain(..n.min(self.entries.len()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repose_distance::MeasureParams;
    use repose_model::Point;

    fn traj(id: u64) -> Arc<Trajectory> {
        Arc::new(Trajectory::new(id, vec![Point::new(id as f64, 0.0)]))
    }

    fn push(log: &mut DeltaLog, seq: u64, t: Arc<Trajectory>) {
        let summary = MeasureParams::default().summary_of(&t.points);
        log.push(seq, t, summary);
    }

    #[test]
    fn last_write_wins() {
        let mut log = DeltaLog::default();
        let mut tomb = HashMap::new();
        // upsert id 1 twice: only the later entry is live
        push(&mut log, 1, traj(1));
        tomb.insert(1, 1);
        push(&mut log, 3, traj(1));
        tomb.insert(1, 3);
        let live = log.live(&tomb);
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].0.id, 1);
    }

    #[test]
    fn delete_out_sequences_insert() {
        let mut log = DeltaLog::default();
        let mut tomb = HashMap::new();
        push(&mut log, 1, traj(2));
        tomb.insert(2, 1);
        // delete at seq 2
        tomb.insert(2, 2);
        assert!(log.live(&tomb).is_empty());
        // re-insert at seq 3
        push(&mut log, 3, traj(2));
        tomb.insert(2, 3);
        assert_eq!(log.live(&tomb).len(), 1);
    }

    #[test]
    fn drain_prefix_keeps_tail() {
        let mut log = DeltaLog::default();
        push(&mut log, 1, traj(1));
        push(&mut log, 2, traj(2));
        push(&mut log, 3, traj(3));
        log.drain_prefix(2);
        assert_eq!(log.len(), 1);
        assert_eq!(log.snapshot()[0].1.id, 3);
        log.drain_prefix(10); // over-long drain is clamped
        assert_eq!(log.len(), 0);
    }

    #[test]
    fn live_entries_carry_insert_time_summaries() {
        let mut log = DeltaLog::default();
        let t = traj(9);
        push(&mut log, 1, Arc::clone(&t));
        let live = log.live(&HashMap::from([(9, 1)]));
        assert_eq!(live[0].1.len, 1);
        assert_eq!(live[0].1.first, t.points[0]);
    }
}
