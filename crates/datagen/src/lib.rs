//! Synthetic trajectory dataset generators.
//!
//! The paper evaluates on seven real datasets (Table III). Those corpora
//! are not redistributable here, so this crate generates *synthetic stand-
//! ins that match the statistics that drive index behaviour*: cardinality
//! (scaled down for single-host experiments), average trajectory length,
//! spatial span, and density skew (trips concentrate around hotspots, like
//! taxi data). DESIGN.md documents the substitution; EXPERIMENTS.md reports
//! both the paper's numbers and ours.
//!
//! Movement model: a trajectory starts near one of `hotspots` urban
//! centers, picks a heading, and random-walks with heading momentum and
//! occasional turns — the classic taxi-trace caricature. Everything is
//! seeded and deterministic.
//!
//! ```
//! use repose_datagen::{sample_queries, PaperDataset};
//!
//! let data = PaperDataset::TDrive.generate(0.05, 42);
//! assert!(!data.is_empty());
//! // Same seed, same dataset.
//! assert_eq!(data.len(), PaperDataset::TDrive.generate(0.05, 42).len());
//!
//! // The paper's query workload: uniformly sampled dataset members.
//! let queries = sample_queries(&data, 3, 7);
//! assert_eq!(queries.len(), 3);
//! assert!(queries.iter().all(|q| data.trajectories().iter().any(|t| t.id == q.id)));
//! ```

#![warn(missing_docs)]

mod spec;
mod walker;

pub use spec::{DataSpec, PaperDataset};
pub use walker::generate;

use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;
use repose_model::{Dataset, Trajectory};

/// Uniformly samples `n` query trajectories from `data` (Section VII-A:
/// "We uniformly and randomly select 100 trajectories as the query set").
pub fn sample_queries(data: &Dataset, n: usize, seed: u64) -> Vec<Trajectory> {
    let n = n.min(data.len());
    if n == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idxs = sample(&mut rng, data.len(), n).into_vec();
    idxs.sort_unstable();
    idxs.into_iter()
        .map(|i| data.trajectories()[i].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_queries_is_deterministic() {
        let d = PaperDataset::TDrive.generate(0.05, 7);
        let a = sample_queries(&d, 5, 3);
        let b = sample_queries(&d, 5, 3);
        assert_eq!(a.len(), 5);
        assert_eq!(
            a.iter().map(|t| t.id).collect::<Vec<_>>(),
            b.iter().map(|t| t.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sample_queries_caps_at_dataset_size() {
        let d = PaperDataset::Rome.generate(0.01, 7);
        let q = sample_queries(&d, 10_000, 1);
        assert_eq!(q.len(), d.len());
    }

    #[test]
    fn sample_queries_empty_dataset() {
        assert!(sample_queries(&Dataset::new(), 10, 1).is_empty());
    }
}
