use crate::DataSpec;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use repose_model::{Dataset, Point, Trajectory};
use std::f64::consts::PI;

/// Generates a dataset from a spec (see crate docs for the movement model).
pub fn generate(spec: &DataSpec, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDA7A_6E4E);
    let (w, h) = spec.spatial_span;

    // Hotspots with a weight distribution: a few dominate (Zipf-ish),
    // reproducing taxi-data skew.
    let hotspots: Vec<(Point, f64)> = (0..spec.hotspots)
        .map(|i| {
            let p = Point::new(rng.random_range(0.0..w), rng.random_range(0.0..h));
            let weight = 1.0 / (i as f64 + 1.0);
            (p, weight)
        })
        .collect();
    let total_weight: f64 = hotspots.iter().map(|(_, w)| *w).sum();

    // Hotspot neighbourhood radius: a few percent of the span.
    let radius = 0.04 * w.min(h);
    // Step length so an average trajectory covers a plausible trip: about
    // 15% of the smaller span dimension.
    let step = 0.15 * w.min(h) / spec.avg_len as f64;

    let mut trajs = Vec::with_capacity(spec.cardinality);
    for id in 0..spec.cardinality {
        // Pick a hotspot by weight.
        let mut pick = rng.random_range(0.0..total_weight);
        let mut center = hotspots[0].0;
        for (p, wt) in &hotspots {
            if pick < *wt {
                center = *p;
                break;
            }
            pick -= *wt;
        }
        // Length around the target average (0.5x .. 1.8x), at least 10.
        let len = ((spec.avg_len as f64 * rng.random_range(0.5..1.8)) as usize).max(10);
        let mut x = (center.x + rng.random_range(-radius..radius)).clamp(0.0, w);
        let mut y = (center.y + rng.random_range(-radius..radius)).clamp(0.0, h);
        let mut heading = rng.random_range(0.0..(2.0 * PI));
        let mut pts = Vec::with_capacity(len);
        pts.push(Point::new(x, y));
        for _ in 1..len {
            // Heading momentum with jitter; occasional sharp turn
            // (junctions).
            if rng.random_range(0.0..1.0) < 0.08 {
                heading += rng.random_range(-PI / 2.0..PI / 2.0);
            } else {
                heading += rng.random_range(-0.25..0.25);
            }
            let s = step * rng.random_range(0.5..1.5);
            x = (x + s * heading.cos()).clamp(0.0, w);
            y = (y + s * heading.sin()).clamp(0.0, h);
            // Bounce off the region border.
            if x <= 0.0 || x >= w {
                heading = PI - heading;
            }
            if y <= 0.0 || y >= h {
                heading = -heading;
            }
            pts.push(Point::new(x, y));
        }
        trajs.push(Trajectory::new(id as u64, pts));
    }
    Dataset::from_trajectories(trajs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PaperDataset;

    #[test]
    fn deterministic_per_seed() {
        let s = PaperDataset::SF.spec();
        let mut small = s;
        small.cardinality = 50;
        let a = generate(&small, 9);
        let b = generate(&small, 9);
        assert_eq!(a.trajectories(), b.trajectories());
        let c = generate(&small, 10);
        assert_ne!(a.trajectories(), c.trajectories());
    }

    #[test]
    fn matches_spec_statistics() {
        let d = PaperDataset::TDrive.generate(0.5, 3);
        let stats = d.stats();
        let spec = PaperDataset::TDrive.spec();
        assert_eq!(stats.cardinality, 1200);
        // Average length within 40% of the target.
        let ratio = stats.avg_len / spec.avg_len as f64;
        assert!(ratio > 0.6 && ratio < 1.4, "avg_len ratio {ratio}");
        // Span within the declared region.
        assert!(stats.spatial_span.0 <= spec.spatial_span.0 + 1e-9);
        assert!(stats.spatial_span.1 <= spec.spatial_span.1 + 1e-9);
        // Span should fill most of the region (hotspots spread out).
        assert!(stats.spatial_span.0 > 0.5 * spec.spatial_span.0);
    }

    #[test]
    fn all_points_finite_and_in_region() {
        let d = PaperDataset::Osm.generate(0.02, 5);
        d.validate().unwrap();
        let spec = PaperDataset::Osm.spec();
        for t in d.trajectories() {
            for p in &t.points {
                assert!(p.x >= 0.0 && p.x <= spec.spatial_span.0);
                assert!(p.y >= 0.0 && p.y <= spec.spatial_span.1);
            }
        }
    }

    #[test]
    fn min_length_respected() {
        let d = PaperDataset::SF.generate(0.05, 2);
        assert!(d.trajectories().iter().all(|t| t.len() >= 10));
    }

    #[test]
    fn density_skew_exists() {
        // With Zipf hotspot weights, the busiest cell should hold many more
        // trajectory starts than the median cell.
        let d = PaperDataset::Xian.generate(0.2, 11);
        let spec = PaperDataset::Xian.spec();
        let mut counts = std::collections::HashMap::new();
        for t in d.trajectories() {
            let p = t.first().unwrap();
            let gx = (p.x / spec.spatial_span.0 * 8.0) as i32;
            let gy = (p.y / spec.spatial_span.1 * 8.0) as i32;
            *counts.entry((gx, gy)).or_insert(0usize) += 1;
        }
        let max = *counts.values().max().unwrap();
        let avg = d.len() / counts.len();
        assert!(max > 2 * avg, "expected hotspot skew: max {max}, avg {avg}");
    }
}
