use crate::walker;
use repose_model::Dataset;

/// The seven evaluation datasets of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    /// Beijing taxi (small scale, small span).
    TDrive,
    /// San Francisco taxi.
    SF,
    /// Rome taxi (long trajectories).
    Rome,
    /// Porto taxi (mid scale).
    Porto,
    /// Didi Xi'an (large scale, tiny span: very dense).
    Xian,
    /// Didi Chengdu (largest scale, tiny span).
    Chengdu,
    /// OpenStreetMap traces (global span).
    Osm,
}

/// Generation parameters for one synthetic dataset.
///
/// `cardinality` and `avg_len` are the *scaled* single-host values; the
/// `paper_*` fields record Table III's originals so the experiment harness
/// can print both.
#[derive(Debug, Clone, Copy)]
pub struct DataSpec {
    /// Dataset label.
    pub name: &'static str,
    /// Scaled number of trajectories at `scale = 1.0`.
    pub cardinality: usize,
    /// Target average trajectory length (points).
    pub avg_len: usize,
    /// Spatial span (degrees), matching Table III.
    pub spatial_span: (f64, f64),
    /// Number of hotspot centers controlling density skew.
    pub hotspots: usize,
    /// Table III cardinality.
    pub paper_cardinality: usize,
    /// Table III average length.
    pub paper_avg_len: f64,
}

impl PaperDataset {
    /// All seven datasets, in Table III/IV order.
    pub const ALL: [PaperDataset; 7] = [
        PaperDataset::SF,
        PaperDataset::Porto,
        PaperDataset::Rome,
        PaperDataset::TDrive,
        PaperDataset::Xian,
        PaperDataset::Chengdu,
        PaperDataset::Osm,
    ];

    /// The scaled generation spec.
    ///
    /// Cardinalities are scaled down ~100–1000× from Table III so the full
    /// experiment matrix runs on one host; average lengths of the two Didi
    /// sets and Rome are softened (230/189/152 → ≤ 110) because exact
    /// DTW/Frechet refinement is quadratic in length. Spans and skew are
    /// preserved — those are what drive pruning behaviour.
    pub fn spec(&self) -> DataSpec {
        match self {
            PaperDataset::TDrive => DataSpec {
                name: "T-drive",
                cardinality: 2400,
                avg_len: 23,
                spatial_span: (1.89, 1.17),
                hotspots: 40,
                paper_cardinality: 356_228,
                paper_avg_len: 22.6,
            },
            PaperDataset::SF => DataSpec {
                name: "SF",
                cardinality: 2400,
                avg_len: 27,
                spatial_span: (0.54, 0.76),
                hotspots: 30,
                paper_cardinality: 343_696,
                paper_avg_len: 27.5,
            },
            PaperDataset::Rome => DataSpec {
                name: "Rome",
                cardinality: 700,
                avg_len: 90,
                spatial_span: (1.21, 0.86),
                hotspots: 20,
                paper_cardinality: 99_473,
                paper_avg_len: 152.4,
            },
            PaperDataset::Porto => DataSpec {
                name: "Porto",
                cardinality: 5000,
                avg_len: 49,
                spatial_span: (11.7, 14.2),
                hotspots: 60,
                paper_cardinality: 1_613_284,
                paper_avg_len: 48.9,
            },
            PaperDataset::Xian => DataSpec {
                name: "Xi'an",
                cardinality: 6000,
                avg_len: 90,
                spatial_span: (0.09, 0.08),
                hotspots: 25,
                paper_cardinality: 6_645_727,
                paper_avg_len: 230.1,
            },
            PaperDataset::Chengdu => DataSpec {
                name: "Chengdu",
                cardinality: 8000,
                avg_len: 80,
                spatial_span: (0.09, 0.07),
                hotspots: 25,
                paper_cardinality: 11_327_466,
                paper_avg_len: 188.9,
            },
            PaperDataset::Osm => DataSpec {
                name: "OSM",
                cardinality: 3500,
                avg_len: 110,
                spatial_span: (360.0, 180.0),
                hotspots: 90,
                paper_cardinality: 4_464_399,
                paper_avg_len: 596.3,
            },
        }
    }

    /// Generates the dataset at `scale` (multiplies cardinality; 1.0 = the
    /// spec's base size), deterministically for a given `seed`.
    pub fn generate(&self, scale: f64, seed: u64) -> Dataset {
        let mut spec = self.spec();
        spec.cardinality = ((spec.cardinality as f64 * scale).round() as usize).max(1);
        walker::generate(&spec, seed)
    }

    /// The grid side `δ` the paper tunes per dataset and measure
    /// (Section VII-A, "Parameter settings").
    pub fn paper_delta(&self, measure: repose_distance::Measure) -> f64 {
        use repose_distance::Measure::*;
        match self {
            PaperDataset::SF | PaperDataset::Porto | PaperDataset::Rome => 0.05,
            PaperDataset::TDrive => 0.15,
            PaperDataset::Osm => 1.0,
            PaperDataset::Chengdu => match measure {
                Hausdorff => 0.01,
                _ => 0.02,
            },
            PaperDataset::Xian => match measure {
                Hausdorff => 0.01,
                _ => 0.03,
            },
        }
    }

    /// Dataset display name.
    pub fn name(&self) -> &'static str {
        self.spec().name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repose_distance::Measure;

    #[test]
    fn specs_cover_all_datasets() {
        for d in PaperDataset::ALL {
            let s = d.spec();
            assert!(s.cardinality > 0);
            assert!(s.avg_len >= 10);
            assert!(s.spatial_span.0 > 0.0 && s.spatial_span.1 > 0.0);
            assert!(s.hotspots > 0);
        }
    }

    #[test]
    fn paper_deltas_match_section_vii() {
        assert_eq!(PaperDataset::TDrive.paper_delta(Measure::Hausdorff), 0.15);
        assert_eq!(PaperDataset::SF.paper_delta(Measure::Frechet), 0.05);
        assert_eq!(PaperDataset::Osm.paper_delta(Measure::Dtw), 1.0);
        assert_eq!(PaperDataset::Chengdu.paper_delta(Measure::Hausdorff), 0.01);
        assert_eq!(PaperDataset::Chengdu.paper_delta(Measure::Frechet), 0.02);
        assert_eq!(PaperDataset::Xian.paper_delta(Measure::Dtw), 0.03);
    }

    #[test]
    fn scale_changes_cardinality() {
        let a = PaperDataset::TDrive.generate(0.02, 1);
        let b = PaperDataset::TDrive.generate(0.04, 1);
        assert!(b.len() > a.len());
        assert_eq!(a.len(), (2400.0f64 * 0.02).round() as usize);
    }
}
