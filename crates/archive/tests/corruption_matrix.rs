//! The corruption matrix: every way an archive can be damaged — a flipped
//! bit in any region, a torn tail, a truncated install, a vanished file,
//! a crash at any `arc.*` fail point — must be *detected and refused
//! loudly* (typed error + quarantine + fallback), never silently served.
//!
//! The refusal bar is absolute because the file-level trailer seal covers
//! every byte: there is no byte in a sealed archive whose corruption may
//! be shrugged off.

use repose::{Repose, ReposeConfig};
use repose_archive::{
    latest_valid, list_generations, quarantine, write_archive, Archive, ArchiveError,
};
use repose_cluster::ClusterConfig;
use repose_distance::Measure;
use repose_durability::{FailAction, FailPlan};
use repose_testkit::tie_dataset;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "repose-archive-cm-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> ReposeConfig {
    ReposeConfig::new(Measure::Hausdorff)
        .with_cluster(ClusterConfig { workers: 2, cores_per_worker: 2, timing_repeats: 1 })
        .with_partitions(2)
}

fn sealed_archive(dir: &Path) -> PathBuf {
    let built = Repose::build(&tie_dataset(0..30), config());
    write_archive(dir, &built, 7, &FailPlan::new()).unwrap()
}

fn flip_byte(path: &Path, at: usize) {
    let mut bytes = std::fs::read(path).unwrap();
    bytes[at] ^= 0x40;
    std::fs::write(path, bytes).unwrap();
}

#[test]
fn every_region_detects_a_flipped_byte() {
    let dir = scratch("flip");
    let path = sealed_archive(&dir);
    let pristine = std::fs::read(&path).unwrap();
    let len = pristine.len();

    // First, middle, and last byte of every 64-byte stripe across the
    // whole file: superblock, every section (padding included), TOC, and
    // trailer all get hit.
    let mut offsets: Vec<usize> = vec![0, 1, len / 2, len - 1, len - 24, len - 23];
    offsets.extend((0..len).step_by(64));
    offsets.extend((63..len).step_by(64));

    for at in offsets {
        std::fs::write(&path, &pristine).unwrap();
        flip_byte(&path, at);
        let err = Archive::open(&path, &FailPlan::new())
            .map(|a| a.attach().map(|_| ()))
            .err()
            .unwrap_or_else(|| panic!("byte {at}/{len}: corrupt archive was accepted"));
        // Any typed refusal is fine; silence is not.
        let _ = err.to_string();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_and_truncation_are_refused() {
    let dir = scratch("torn");
    let path = sealed_archive(&dir);
    let pristine = std::fs::read(&path).unwrap();

    for keep in [0, 1, 63, 64, pristine.len() / 2, pristine.len() - 1] {
        std::fs::write(&path, &pristine[..keep]).unwrap();
        assert!(
            Archive::open(&path, &FailPlan::new()).is_err(),
            "truncation to {keep} bytes was accepted"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_file_is_a_typed_io_error() {
    let dir = scratch("missing");
    std::fs::create_dir_all(&dir).unwrap();
    let err = Archive::open(&dir.join("gen-0000000000000001.arc"), &FailPlan::new()).unwrap_err();
    assert!(matches!(err, ArchiveError::Io { .. }), "got {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_at_every_writer_fail_point_leaves_prior_generation_intact() {
    for point in ["arc.write", "arc.sync", "arc.rename"] {
        for action in [FailAction::IoError, FailAction::ShortWrite, FailAction::Crash] {
            let dir = scratch("crash");
            let built = Repose::build(&tie_dataset(0..30), config());
            // Generation 1 installs cleanly...
            write_archive(&dir, &built, 3, &FailPlan::new()).unwrap();
            // ...then generation 2's install dies at `point`.
            let plan = FailPlan::new();
            plan.arm(point, action, 0);
            let err = write_archive(&dir, &built, 8, &plan).unwrap_err();
            assert!(plan.any_fired(), "{point}: plan never fired");
            assert!(matches!(err, ArchiveError::Io { .. }), "{point}: got {err}");

            // The aborted install is invisible to generation scans and the
            // prior generation still recovers.
            assert_eq!(list_generations(&dir).len(), 1, "{point}: torn install listed");
            let scan = latest_valid(&dir, &FailPlan::new());
            assert!(scan.rejected.is_empty(), "{point}: valid gen rejected");
            let archive = scan.best.expect("prior generation must survive");
            assert_eq!(archive.op_seq(), 3, "{point}: wrong generation recovered");
            archive.attach().unwrap();
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn map_failure_falls_back_to_older_generation() {
    let dir = scratch("map");
    let built = Repose::build(&tie_dataset(0..30), config());
    write_archive(&dir, &built, 3, &FailPlan::new()).unwrap();
    write_archive(&dir, &built, 9, &FailPlan::new()).unwrap();

    // The newest generation fails to map; the scan reports it and falls
    // back to the older one instead of dying.
    let plan = FailPlan::new();
    plan.arm("arc.map", FailAction::IoError, 0);
    let scan = latest_valid(&dir, &plan);
    assert_eq!(scan.rejected.len(), 1);
    assert_eq!(scan.best.unwrap().op_seq(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quarantine_moves_the_evidence_aside() {
    let dir = scratch("quarantine");
    let path = sealed_archive(&dir);
    flip_byte(&path, 100);
    let err = Archive::open(&path, &FailPlan::new()).unwrap_err();
    assert!(matches!(err, ArchiveError::Checksum(_)), "got {err}");

    let moved = quarantine(&path).unwrap();
    assert!(!path.exists(), "corrupt file left in place");
    assert!(moved.exists());
    assert!(moved.parent().unwrap().ends_with(".quarantine"));
    // Quarantined files no longer participate in generation scans.
    assert!(list_generations(&dir).is_empty());
    assert!(latest_valid(&dir, &FailPlan::new()).best.is_none());

    // A second quarantine of the same name does not clobber the first.
    let path2 = sealed_archive(&dir);
    let moved2 = quarantine(&path2).unwrap();
    assert_ne!(moved, moved2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn swapped_sections_with_valid_crcs_are_still_refused() {
    // A subtler corruption: overwrite one section's bytes with another
    // same-length section's bytes. Per-section CRCs would pass if the TOC
    // were also swapped — but the file-level seal and the structural
    // validation refuse the mismatch.
    let dir = scratch("swap");
    let path = sealed_archive(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    // Swap two interior stretches wholesale.
    let (a, b, w) = (1024, 2048, 256);
    if bytes.len() > b + w {
        for i in 0..w {
            bytes.swap(a + i, b + i);
        }
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            Archive::open(&path, &FailPlan::new())
                .map(|a| a.attach().map(|_| ()))
                .is_err(),
            "byte-swapped archive was accepted"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scrub_localizes_in_place_corruption_after_open() {
    // Scrub exists for corruption that arrives *after* open-time checks
    // (bit rot under a long-lived mapping). Model it with the heap
    // fallback: validate, then corrupt the file, then re-open unscrubbed
    // vs scrubbed.
    let dir = scratch("scrub");
    let path = sealed_archive(&dir);
    let clean = Archive::open(&path, &FailPlan::new()).unwrap();
    assert!(clean.scrub().is_clean());

    flip_byte(&path, 200);
    let reopened = Archive::open(&path, &FailPlan::new());
    assert!(reopened.is_err(), "corrupted reopen must fail validation");
    let _ = std::fs::remove_dir_all(&dir);
}
