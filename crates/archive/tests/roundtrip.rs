//! Archive roundtrip: a deployment written to disk and attached back from
//! the mapped file must answer every query *bitwise identically* to the
//! original, for all six measures — the restart path is only millisecond-
//! fast if it is also exactly right.

use repose::{Repose, ReposeConfig};
use repose_archive::{latest_valid, list_generations, write_archive, Archive};
use repose_cluster::ClusterConfig;
use repose_distance::Measure;
use repose_durability::FailPlan;
use repose_testkit::{tie_dataset, tie_queries};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "repose-archive-rt-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(measure: Measure) -> ReposeConfig {
    ReposeConfig::new(measure)
        .with_cluster(ClusterConfig { workers: 2, cores_per_worker: 2, timing_repeats: 1 })
        .with_partitions(4)
}

/// All hits of all fixed queries, as raw bits (id + f64 bit pattern), so
/// equality is exact, not approximate.
fn answer_bits(deployment: &Repose) -> Vec<(u64, u64)> {
    tie_queries()
        .iter()
        .flat_map(|q| {
            deployment
                .query(q, 7)
                .hits
                .into_iter()
                .map(|h| (h.id, h.dist.to_bits()))
        })
        .collect()
}

#[test]
fn attach_answers_bitwise_identically_for_all_measures() {
    for measure in [
        Measure::Hausdorff,
        Measure::Frechet,
        Measure::Dtw,
        Measure::Lcss,
        Measure::Edr,
        Measure::Erp,
    ] {
        let dir = scratch("measures");
        let built = Repose::build(&tie_dataset(0..40), config(measure));
        let expected = answer_bits(&built);

        let path = write_archive(&dir, &built, 17, &FailPlan::new()).unwrap();
        let archive = Archive::open(&path, &FailPlan::new()).unwrap();
        assert_eq!(archive.op_seq(), 17);
        let attached = archive.attach().unwrap();

        assert_eq!(
            answer_bits(&attached),
            expected,
            "{measure:?}: attached deployment answers differ from the built one"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn attach_is_zero_copy_over_the_mapping() {
    let dir = scratch("zero-copy");
    let built = Repose::build(&tie_dataset(0..40), config(Measure::Hausdorff));
    let path = write_archive(&dir, &built, 1, &FailPlan::new()).unwrap();
    let archive = Archive::open(&path, &FailPlan::new()).unwrap();
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    assert!(archive.is_mapped(), "linux/x86-64 attach should be a real mmap");
    let attached = archive.attach().unwrap();
    for pi in 0..attached.num_partitions() {
        let view = attached.partition_view(pi);
        // Mapped sections report zero owned heap bytes: the arenas live
        // in the file mapping, not in copies.
        assert_eq!(view.store.mem_bytes(), 0, "partition {pi} store was copied");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn generations_install_in_sequence_and_latest_wins() {
    let dir = scratch("gens");
    let built = Repose::build(&tie_dataset(0..30), config(Measure::Hausdorff));
    let p1 = write_archive(&dir, &built, 5, &FailPlan::new()).unwrap();
    let p2 = write_archive(&dir, &built, 9, &FailPlan::new()).unwrap();
    assert_ne!(p1, p2);
    assert_eq!(list_generations(&dir).len(), 2);

    let scan = latest_valid(&dir, &FailPlan::new());
    assert!(scan.rejected.is_empty());
    assert_eq!(scan.best.unwrap().op_seq(), 9, "newest generation wins");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn heap_fallback_answers_identically_to_the_mapping() {
    let dir = scratch("heap");
    let built = Repose::build(&tie_dataset(0..30), config(Measure::Frechet));
    let path = write_archive(&dir, &built, 3, &FailPlan::new()).unwrap();

    let mapped = Archive::open(&path, &FailPlan::new()).unwrap().attach().unwrap();
    let heap = Archive::open_heap(&path).unwrap().attach().unwrap();
    assert_eq!(answer_bits(&mapped), answer_bits(&heap));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scrub_is_clean_on_a_valid_archive() {
    let dir = scratch("scrub");
    let built = Repose::build(&tie_dataset(0..30), config(Measure::Hausdorff));
    let path = write_archive(&dir, &built, 1, &FailPlan::new()).unwrap();
    let archive = Archive::open(&path, &FailPlan::new()).unwrap();
    let report = archive.scrub();
    assert!(report.is_clean(), "unexpected corruption: {:?}", report.corrupt);
    // 13 array sections per partition + 1 meta.
    assert_eq!(report.sections, 4 * 13 + 1);
    assert_eq!(report.bytes, archive.file_len());
    let _ = std::fs::remove_dir_all(&dir);
}
