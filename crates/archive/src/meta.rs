//! The archive's meta section: everything a frozen deployment needs that
//! is *not* a flat array — configuration, region, pivots, per-partition
//! scalars. Serialized as JSON (tiny next to the point arenas, and
//! debuggable with any text tool); protected by the same per-section CRC
//! and file seal as every other section.

use repose::ReposeConfig;
use repose_model::Mbr;
use repose_rptrie::{PivotSet, RpTrieConfig};

/// The deserialized meta section.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ArchiveMeta {
    /// The deployment configuration the archive was built with.
    pub config: ReposeConfig,
    /// The global data region (grids are recomputed from it at attach).
    pub region: Mbr,
    /// Operation sequence number the archive is current through.
    pub op_seq: u64,
    /// One entry per partition, in partition order.
    pub partitions: Vec<PartitionMeta>,
}

/// Per-partition scalars and pivots.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PartitionMeta {
    /// Total trie node count.
    pub n_nodes: usize,
    /// Bitmap-encoded BFS-prefix length.
    pub n_dense: usize,
    /// Child-bitmap width (grid cells).
    pub m_cells: usize,
    /// Pivot count per node.
    pub np: usize,
    /// Length of the partition's trajectory store at build time.
    pub built_over: usize,
    /// The partition's exact trie configuration (per-partition seed
    /// included), so attach restores it verbatim instead of re-deriving.
    pub trie: RpTrieConfig,
    /// The partition's pivot trajectories.
    pub pivots: PivotSet,
}

impl ArchiveMeta {
    /// Cross-checks the meta against the superblock it arrived with.
    pub fn validate(&self, sb_partitions: u32, sb_op_seq: u64) -> Result<(), crate::ArchiveError> {
        let n = self.partitions.len();
        if n != self.config.num_partitions {
            return Err(crate::ArchiveError::Meta(format!(
                "meta has {n} partitions but its config says {}",
                self.config.num_partitions
            )));
        }
        if n != sb_partitions as usize {
            return Err(crate::ArchiveError::Meta(format!(
                "meta has {n} partitions but the superblock says {sb_partitions}"
            )));
        }
        if self.op_seq != sb_op_seq {
            return Err(crate::ArchiveError::Meta(format!(
                "meta op_seq {} disagrees with superblock op_seq {sb_op_seq}",
                self.op_seq
            )));
        }
        Ok(())
    }
}
