//! Opening, validating, attaching, and scrubbing installed archives.
//!
//! [`Archive::open`] maps a generation file and validates every integrity
//! layer up front — superblock CRC, trailer seal (length + file CRC),
//! TOC bounds, per-section CRCs, meta consistency. Only a fully valid
//! archive yields an [`Archive`]; everything else is a typed
//! [`ArchiveError`] so the recovery path can quarantine the file loudly
//! and fall back.
//!
//! [`Archive::attach`] then turns the *same mapped bytes* into a serving
//! [`Repose`] deployment: every array section becomes a
//! [`repose_succinct::FlatVec`] view into the mapping (no copies, no
//! pointer fixup), grids are recomputed from region + `delta`, and the
//! rank/select directories are rebuilt with one popcount pass — the only
//! O(data) work on the attach path is checksum verification at open time.

use crate::format::{SectionKind, Superblock, TocEntry, Trailer, NO_PARTITION, SUPERBLOCK_LEN, TOC_ENTRY_LEN, TRAILER_LEN};
use crate::meta::ArchiveMeta;
use crate::mmap::MappedFile;
use crate::writer::list_generations;
use crate::ArchiveError;
use repose::Repose;
use repose_distance::TrajSummary;
use repose_durability::{crc32, FailPlan};
use repose_model::{Point, TrajStore};
use repose_rptrie::{FrozenTrie, FrozenTrieParts, RpTrie};
use repose_succinct::{BitVec, ByteBuf, FlatVec, Pod};
use repose_zorder::Grid;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A validated, mapped archive generation, ready to attach or scrub.
#[derive(Debug)]
pub struct Archive {
    path: PathBuf,
    buf: ByteBuf,
    superblock: Superblock,
    toc: Vec<TocEntry>,
    meta: ArchiveMeta,
    mapped: bool,
}

impl Archive {
    /// Opens and fully validates the archive at `path` (see module docs
    /// for the layers). The `arc.map` fail point fires here, modelling a
    /// mapping failure at attach time.
    pub fn open(path: &Path, failpoints: &FailPlan) -> Result<Self, ArchiveError> {
        if failpoints.hit("arc.map").is_some() {
            return Err(ArchiveError::io(
                "arc.map",
                path,
                std::io::Error::other("injected fault at arc.map"),
            ));
        }
        let file = MappedFile::open(path).map_err(|e| ArchiveError::io("map", path, e))?;
        let mapped = file.is_mapped();
        let buf: ByteBuf = Arc::new(file);
        Self::validate(path, buf, mapped)
    }

    /// [`Archive::open`] but forcing the heap (copy-at-open) fallback —
    /// the baseline the `restart` benchmark compares the mapping against.
    pub fn open_heap(path: &Path) -> Result<Self, ArchiveError> {
        let file = MappedFile::open_heap(path).map_err(|e| ArchiveError::io("read", path, e))?;
        let buf: ByteBuf = Arc::new(file);
        Self::validate(path, buf, false)
    }

    fn validate(path: &Path, buf: ByteBuf, mapped: bool) -> Result<Self, ArchiveError> {
        let bytes = buf.bytes();
        let sb = Superblock::decode(bytes)?;
        Trailer::decode_and_verify(bytes)?;
        let body_end = bytes.len() - TRAILER_LEN;

        let toc_off = sb.toc_off as usize;
        let toc_len = sb.toc_len as usize;
        if toc_len != sb.section_count as usize * TOC_ENTRY_LEN
            || toc_off < SUPERBLOCK_LEN
            || toc_off.checked_add(toc_len) != Some(body_end)
        {
            return Err(ArchiveError::Format(format!(
                "TOC [{toc_off}, {toc_off}+{toc_len}) inconsistent with {} sections in a {}-byte file",
                sb.section_count,
                bytes.len()
            )));
        }

        let mut toc = Vec::with_capacity(sb.section_count as usize);
        for i in 0..sb.section_count as usize {
            let at = toc_off + i * TOC_ENTRY_LEN;
            let entry = TocEntry::decode(&bytes[at..at + TOC_ENTRY_LEN])?;
            let (off, len) = (entry.offset as usize, entry.len as usize);
            if off % 8 != 0 || off < SUPERBLOCK_LEN || off.checked_add(len).is_none_or(|e| e > toc_off)
            {
                return Err(ArchiveError::Format(format!(
                    "section {} at [{off}, {off}+{len}) escapes the payload area",
                    entry.label()
                )));
            }
            // Per-section CRCs are deliberately *not* verified here: the
            // trailer seal just checked above covers every body byte
            // (sections, padding, TOC), so re-hashing each section would
            // double the open-time cost for no added detection power.
            // They earn their keep in [`Archive::scrub`], which uses them
            // to *localize* post-open corruption section by section.
            toc.push(entry);
        }

        let meta_entry = toc
            .iter()
            .find(|e| e.kind == SectionKind::Meta && e.partition == NO_PARTITION)
            .copied()
            .ok_or_else(|| ArchiveError::Format("archive has no meta section".into()))?;
        let meta_bytes = &bytes[meta_entry.offset as usize..(meta_entry.offset + meta_entry.len) as usize];
        let meta_str = std::str::from_utf8(meta_bytes)
            .map_err(|_| ArchiveError::Meta("meta section is not UTF-8".into()))?;
        let meta: ArchiveMeta = serde_json::from_str(meta_str)
            .map_err(|e| ArchiveError::Meta(format!("meta does not parse: {e:?}")))?;
        meta.validate(sb.partitions, sb.op_seq)?;

        Ok(Archive { path: path.to_path_buf(), buf, superblock: sb, toc, meta, mapped })
    }

    /// The operation sequence number the archive is current through.
    pub fn op_seq(&self) -> u64 {
        self.superblock.op_seq
    }

    /// The archived deployment configuration.
    pub fn meta(&self) -> &ArchiveMeta {
        &self.meta
    }

    /// The file this archive was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether the bytes are a real kernel mapping (vs the heap fallback).
    pub fn is_mapped(&self) -> bool {
        self.mapped
    }

    /// Total archive size in bytes.
    pub fn file_len(&self) -> u64 {
        self.buf.bytes().len() as u64
    }

    fn section(&self, kind: SectionKind, partition: u32) -> Result<TocEntry, ArchiveError> {
        self.toc
            .iter()
            .find(|e| e.kind == kind && e.partition == partition)
            .copied()
            .ok_or_else(|| {
                ArchiveError::Format(format!(
                    "archive is missing section {}[p{partition}]",
                    kind.name()
                ))
            })
    }

    /// A zero-copy element view of one section.
    fn view<T: Pod>(&self, kind: SectionKind, partition: u32) -> Result<FlatVec<T>, ArchiveError> {
        let entry = self.section(kind, partition)?;
        let size = std::mem::size_of::<T>();
        let len = entry.len as usize;
        if !len.is_multiple_of(size) {
            return Err(ArchiveError::Format(format!(
                "section {} is {len} bytes, not a multiple of element size {size}",
                entry.label()
            )));
        }
        FlatVec::view(self.buf.clone(), entry.offset as usize, len / size)
            .map_err(|e| ArchiveError::Format(format!("section {}: {e}", entry.label())))
    }

    /// Reassembles the full serving deployment over the mapped bytes.
    ///
    /// Structural invariants are re-validated by each layer's `from_parts`
    /// (store prefix-table monotonicity, trie table sizing, bitvec trailing
    /// bits), so even a section that passes its CRC but disagrees with the
    /// meta scalars is refused, never served.
    pub fn attach(&self) -> Result<Repose, ArchiveError> {
        let n = self.meta.partitions.len();
        let grid = Grid::with_delta(self.meta.region, self.meta.config.delta);
        let mut partitions = Vec::with_capacity(n);
        for (pi, pm) in self.meta.partitions.iter().enumerate() {
            let pi32 = pi as u32;
            let bad = |what: &str, e: String| {
                ArchiveError::Format(format!("partition {pi} {what}: {e}"))
            };

            let store = TrajStore::from_parts(
                self.view::<u64>(SectionKind::StoreIds, pi32)?,
                self.view::<u64>(SectionKind::StoreStarts, pi32)?,
                self.view::<Point>(SectionKind::StorePoints, pi32)?,
            )
            .map_err(|e| bad("store", e.to_string()))?;

            let bc_bits = BitVec::from_words(
                self.view::<u64>(SectionKind::TrieBcWords, pi32)?,
                pm.n_dense * pm.m_cells,
            )
            .map_err(|e| bad("dense bitmap", e))?;
            let has_leaf_bits = BitVec::from_words(
                self.view::<u64>(SectionKind::TrieHasLeafWords, pi32)?,
                pm.n_nodes,
            )
            .map_err(|e| bad("leaf bitmap", e))?;

            let frozen = FrozenTrie::from_parts(FrozenTrieParts {
                n_nodes: pm.n_nodes,
                n_dense: pm.n_dense,
                m_cells: pm.m_cells,
                bc_bits,
                sparse_offsets: self.view::<u32>(SectionKind::TrieSparseOffsets, pi32)?,
                sparse_bytes: self.view::<u8>(SectionKind::TrieSparseBytes, pi32)?,
                has_leaf_bits,
                leaf_offsets: self.view::<u64>(SectionKind::LeafOffsets, pi32)?,
                leaf_members: self.view::<u32>(SectionKind::LeafMembers, pi32)?,
                leaf_summaries: self.view::<TrajSummary>(SectionKind::LeafSummaries, pi32)?,
                leaf_dmax: self.view::<f64>(SectionKind::LeafDmax, pi32)?,
                leaf_nmin: self.view::<u32>(SectionKind::LeafNmin, pi32)?,
                hr: self.view::<f64>(SectionKind::Hr, pi32)?,
                np: pm.np,
            })
            .map_err(|e| bad("trie", e))?;

            if store.len() != pm.built_over {
                return Err(ArchiveError::Meta(format!(
                    "partition {pi} store has {} trajectories but the trie was built over {}",
                    store.len(),
                    pm.built_over
                )));
            }
            let trie = RpTrie::from_parts(
                frozen,
                grid.clone(),
                pm.trie,
                pm.pivots.clone(),
                pm.built_over,
            );
            partitions.push((store, trie));
        }
        Ok(Repose::from_built_partitions(partitions, self.meta.region, self.meta.config))
    }

    /// Online integrity scrub: re-verifies the superblock CRC, every
    /// per-section CRC, and the file-level trailer seal against the mapped
    /// bytes as they are *now* — catching bit rot or in-place tampering
    /// that happened after open-time validation.
    pub fn scrub(&self) -> ScrubReport {
        let bytes = self.buf.bytes();
        let mut report = ScrubReport {
            sections: 0,
            bytes: bytes.len() as u64,
            corrupt: Vec::new(),
        };
        if Superblock::decode(bytes).is_err() {
            report.corrupt.push("superblock".to_string());
        }
        for entry in &self.toc {
            report.sections += 1;
            let (off, len) = (entry.offset as usize, entry.len as usize);
            if crc32(&bytes[off..off + len]) != entry.crc {
                report.corrupt.push(entry.label());
            }
        }
        if Trailer::decode_and_verify(bytes).is_err() {
            report.corrupt.push("trailer".to_string());
        }
        report
    }
}

/// What an integrity scrub found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubReport {
    /// Number of sections checked.
    pub sections: usize,
    /// Total bytes checksummed.
    pub bytes: u64,
    /// Labels of regions that failed their checksum (empty = clean).
    pub corrupt: Vec<String>,
}

impl ScrubReport {
    /// Whether every region verified.
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty()
    }
}

/// Result of scanning a directory for the newest usable archive.
#[derive(Debug)]
pub struct LatestScan {
    /// The newest generation that passed full validation, if any.
    pub best: Option<Archive>,
    /// Generations that failed validation, newest first, with why — the
    /// caller quarantines these loudly.
    pub rejected: Vec<(PathBuf, ArchiveError)>,
}

/// Scans `dir` for the newest valid archive generation. Invalid
/// generations (torn, corrupt, foreign) are returned in
/// [`LatestScan::rejected`] rather than silently skipped.
pub fn latest_valid(dir: &Path, failpoints: &FailPlan) -> LatestScan {
    let mut rejected = Vec::new();
    for (_, path) in list_generations(dir).into_iter().rev() {
        match Archive::open(&path, failpoints) {
            Ok(archive) => return LatestScan { best: Some(archive), rejected },
            Err(e) => rejected.push((path, e)),
        }
    }
    LatestScan { best: None, rejected }
}

/// Moves a failed archive into `<dir>/.quarantine/` (creating it as
/// needed), preserving the file for post-mortem instead of deleting
/// evidence. Returns the quarantined path.
pub fn quarantine(path: &Path) -> std::io::Result<PathBuf> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let qdir = dir.join(".quarantine");
    std::fs::create_dir_all(&qdir)?;
    let name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other("quarantine target has no file name"))?;
    let mut dest = qdir.join(name);
    let mut i = 0u32;
    while dest.exists() {
        i += 1;
        dest = qdir.join(format!("{}.{i}", name.to_string_lossy()));
    }
    std::fs::rename(path, &dest)?;
    Ok(dest)
}
