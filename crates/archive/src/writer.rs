//! Writing and atomically installing archive generations.
//!
//! The whole archive image is assembled in memory (sections, TOC,
//! superblock, trailer — the trailer seal is computed over the final
//! bytes), then installed with the same discipline as WAL snapshots:
//! write to `<name>.tmp`, `fsync` the file, `rename` into place, `fsync`
//! the directory. A reader can therefore *never* observe a half-written
//! `gen-*.arc`: either the rename happened and the file is sealed, or the
//! leftovers are `.tmp` files that generation scans ignore.
//!
//! Four fail points cover the install path — `arc.write`, `arc.sync`,
//! `arc.rename` (writer side) and `arc.map` (reader side) — so the crash
//! suites can abort an install at every stage and prove recovery.

use crate::format::{align8, SectionKind, Superblock, TocEntry, Trailer, NO_PARTITION};
use crate::meta::{ArchiveMeta, PartitionMeta};
use crate::ArchiveError;
use repose::Repose;
use repose_durability::{crc32, FailAction, FailPlan};
use repose_succinct::bytes_of;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Filename of generation `seq`.
pub fn gen_file_name(seq: u64) -> String {
    format!("gen-{seq:016x}.arc")
}

/// Parses a generation sequence number out of a `gen-*.arc` filename.
pub fn parse_gen_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("gen-")?.strip_suffix(".arc")?;
    (hex.len() == 16).then(|| u64::from_str_radix(hex, 16).ok())?
}

/// All installed generations in `dir`, ascending by sequence number.
/// `.tmp` leftovers and foreign files are ignored; a missing directory is
/// simply empty.
pub fn list_generations(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut gens: Vec<(u64, PathBuf)> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| {
                let e = e.ok()?;
                let seq = parse_gen_name(e.file_name().to_str()?)?;
                Some((seq, e.path()))
            })
            .collect(),
        Err(_) => Vec::new(),
    };
    gens.sort_by_key(|(seq, _)| *seq);
    gens
}

/// Removes the oldest installed generations, keeping the newest `keep`.
/// Best-effort (a generation that refuses to unlink is simply left for
/// the next prune); returns how many files were removed.
pub fn prune_generations(dir: &Path, keep: usize) -> usize {
    let gens = list_generations(dir);
    let excess = gens.len().saturating_sub(keep.max(1));
    gens[..excess]
        .iter()
        .filter(|(_, path)| std::fs::remove_file(path).is_ok())
        .count()
}

/// Serializes `deployment` into a fresh archive generation in `dir` and
/// atomically installs it. `op_seq` is the operation sequence number the
/// deployment is current through (recovery replays only WAL records
/// beyond it). Returns the installed path.
pub fn write_archive(
    dir: &Path,
    deployment: &Repose,
    op_seq: u64,
    failpoints: &FailPlan,
) -> Result<PathBuf, ArchiveError> {
    let image = build_image(deployment, op_seq)?;
    let seq = list_generations(dir).last().map_or(1, |(s, _)| s + 1);
    install(dir, &gen_file_name(seq), &image, failpoints)
}

/// Assembles the complete archive image in memory.
fn build_image(deployment: &Repose, op_seq: u64) -> Result<Vec<u8>, ArchiveError> {
    let n = deployment.num_partitions();
    let mut img = vec![0u8; crate::format::SUPERBLOCK_LEN];
    let mut toc: Vec<TocEntry> = Vec::new();
    let mut partitions_meta = Vec::with_capacity(n);

    let push = |img: &mut Vec<u8>, toc: &mut Vec<TocEntry>,
                    kind: SectionKind, partition: u32, bytes: &[u8]| {
        let off = align8(img.len());
        img.resize(off, 0);
        img.extend_from_slice(bytes);
        toc.push(TocEntry {
            kind,
            partition,
            offset: off as u64,
            len: bytes.len() as u64,
            crc: crc32(bytes),
        });
    };

    for pi in 0..n {
        let view = deployment.partition_view(pi);
        let (ids, starts, points) = view.store.as_parts();
        let parts = view.trie.frozen().to_parts();
        let pi32 = pi as u32;

        push(&mut img, &mut toc, SectionKind::StoreIds, pi32, bytes_of(ids));
        push(&mut img, &mut toc, SectionKind::StoreStarts, pi32, bytes_of(starts));
        push(&mut img, &mut toc, SectionKind::StorePoints, pi32, bytes_of(points));
        push(&mut img, &mut toc, SectionKind::TrieBcWords, pi32, bytes_of(parts.bc_bits.as_words()));
        push(&mut img, &mut toc, SectionKind::TrieSparseOffsets, pi32, bytes_of(&parts.sparse_offsets));
        push(&mut img, &mut toc, SectionKind::TrieSparseBytes, pi32, bytes_of(&parts.sparse_bytes));
        push(&mut img, &mut toc, SectionKind::TrieHasLeafWords, pi32, bytes_of(parts.has_leaf_bits.as_words()));
        push(&mut img, &mut toc, SectionKind::LeafOffsets, pi32, bytes_of(&parts.leaf_offsets));
        push(&mut img, &mut toc, SectionKind::LeafMembers, pi32, bytes_of(&parts.leaf_members));
        push(&mut img, &mut toc, SectionKind::LeafSummaries, pi32, bytes_of(&parts.leaf_summaries));
        push(&mut img, &mut toc, SectionKind::LeafDmax, pi32, bytes_of(&parts.leaf_dmax));
        push(&mut img, &mut toc, SectionKind::LeafNmin, pi32, bytes_of(&parts.leaf_nmin));
        push(&mut img, &mut toc, SectionKind::Hr, pi32, bytes_of(&parts.hr));

        partitions_meta.push(PartitionMeta {
            n_nodes: parts.n_nodes,
            n_dense: parts.n_dense,
            m_cells: parts.m_cells,
            np: parts.np,
            built_over: view.trie.built_over(),
            trie: *view.trie.config(),
            pivots: view.trie.pivots().clone(),
        });
    }

    let meta = ArchiveMeta {
        config: *deployment.config(),
        region: deployment.region(),
        op_seq,
        partitions: partitions_meta,
    };
    let meta_json = serde_json::to_string(&meta)
        .map_err(|e| ArchiveError::Meta(format!("meta serialization failed: {e:?}")))?;
    push(&mut img, &mut toc, SectionKind::Meta, NO_PARTITION, meta_json.as_bytes());

    let toc_off = align8(img.len());
    img.resize(toc_off, 0);
    for entry in &toc {
        img.extend_from_slice(&entry.encode());
    }

    let sb = Superblock {
        section_count: toc.len() as u32,
        toc_off: toc_off as u64,
        toc_len: (toc.len() * crate::format::TOC_ENTRY_LEN) as u64,
        op_seq,
        partitions: n as u32,
    };
    img[..crate::format::SUPERBLOCK_LEN].copy_from_slice(&sb.encode());

    let trailer = Trailer {
        file_crc: crc32(&img),
        total_len: (img.len() + crate::format::TRAILER_LEN) as u64,
    };
    img.extend_from_slice(&trailer.encode());
    Ok(img)
}

fn injected(op: &'static str, path: &Path) -> ArchiveError {
    ArchiveError::io(op, path, std::io::Error::other(format!("injected fault at {op}")))
}

/// Atomic install: tmp + fsync + rename + directory fsync, with the three
/// writer-side fail points hit in path order. Any fault leaves at worst a
/// `.tmp` file that no reader ever opens.
fn install(
    dir: &Path,
    name: &str,
    image: &[u8],
    failpoints: &FailPlan,
) -> Result<PathBuf, ArchiveError> {
    std::fs::create_dir_all(dir).map_err(|e| ArchiveError::io("create dir", dir, e))?;
    let tmp = dir.join(format!("{name}.tmp"));
    let dest = dir.join(name);

    let mut file =
        std::fs::File::create(&tmp).map_err(|e| ArchiveError::io("create tmp", &tmp, e))?;
    match failpoints.hit("arc.write") {
        Some(FailAction::IoError) => return Err(injected("arc.write", &tmp)),
        Some(FailAction::ShortWrite) | Some(FailAction::Crash) => {
            // Torn install: half the image lands, never renamed.
            let _ = file.write_all(&image[..image.len() / 2]);
            return Err(injected("arc.write", &tmp));
        }
        None => {
            file.write_all(image).map_err(|e| ArchiveError::io("write tmp", &tmp, e))?;
        }
    }
    if failpoints.hit("arc.sync").is_some() {
        return Err(injected("arc.sync", &tmp));
    }
    file.sync_data().map_err(|e| ArchiveError::io("sync tmp", &tmp, e))?;
    if failpoints.hit("arc.rename").is_some() {
        return Err(injected("arc.rename", &dest));
    }
    std::fs::rename(&tmp, &dest).map_err(|e| ArchiveError::io("rename", &dest, e))?;
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(dest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_names_roundtrip_and_sort() {
        assert_eq!(parse_gen_name(&gen_file_name(1)), Some(1));
        assert_eq!(parse_gen_name(&gen_file_name(u64::MAX)), Some(u64::MAX));
        assert_eq!(parse_gen_name("gen-0000000000000001.arc.tmp"), None);
        assert_eq!(parse_gen_name("base-0000000000000001.snap"), None);
        assert_eq!(parse_gen_name("gen-01.arc"), None, "fixed-width only");
    }
}
