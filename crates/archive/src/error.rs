//! The archive layer's typed error: every way an archive can fail to
//! write, validate, or attach, each loud and specific — a corrupt archive
//! is *refused*, never partially served.

use std::path::PathBuf;

/// Why an archive operation failed.
#[derive(Debug)]
pub enum ArchiveError {
    /// An underlying filesystem operation failed (including injected
    /// `arc.*` fail-point I/O errors).
    Io {
        /// What was being done (`"write tmp archive"`, `"map archive"`, ...).
        op: &'static str,
        /// The failing path.
        path: PathBuf,
        /// The OS (or injected) error.
        source: std::io::Error,
    },
    /// The bytes are not a well-formed archive: bad magic, unsupported
    /// version, out-of-bounds table entries, undersized file, misaligned
    /// or inconsistent sections.
    Format(String),
    /// A CRC-32 check failed — the superblock, the sealed trailer, or a
    /// named section does not match the bytes it covers.
    Checksum(String),
    /// The meta section parsed but describes an impossible deployment
    /// (e.g. partition count disagreeing with its own config).
    Meta(String),
}

impl ArchiveError {
    pub(crate) fn io(op: &'static str, path: &std::path::Path, source: std::io::Error) -> Self {
        ArchiveError::Io { op, path: path.to_path_buf(), source }
    }
}

impl std::fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchiveError::Io { op, path, source } => {
                write!(f, "archive {op} failed for {}: {source}", path.display())
            }
            ArchiveError::Format(m) => write!(f, "malformed archive: {m}"),
            ArchiveError::Checksum(m) => write!(f, "archive checksum mismatch: {m}"),
            ArchiveError::Meta(m) => write!(f, "inconsistent archive meta: {m}"),
        }
    }
}

impl std::error::Error for ArchiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArchiveError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
