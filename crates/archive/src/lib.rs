//! Persistent zero-copy archives of frozen REPOSE deployments.
//!
//! A deployment's frozen state — per-partition point arenas, slot tables,
//! succinct trie encodings, pivot tables, and summary tables — is laid
//! out in a versioned, sectioned, CRC-32-checksummed file
//! ([`mod@format`]: `RPARCH01`). Every array section is stored as its raw
//! element bytes at an 8-aligned offset, so attaching an archive is
//! *validation*, not deserialization: the file is `mmap`ed once
//! ([`mmap::MappedFile`]) and every array becomes a
//! [`repose_succinct::FlatVec`] view into the mapping. A restart goes
//! from "CSV rebuild in minutes" to "checksum + attach in milliseconds";
//! the only O(data) attach cost is open-time CRC verification plus one
//! popcount pass to rebuild the rank/select directories.
//!
//! Robustness is the headline, not an afterthought:
//!
//! * **Sealed installs** — [`writer::write_archive`] assembles the whole
//!   image (superblock, sections, TOC, trailer) in memory and installs it
//!   tmp + `fsync` + `rename` + dir-`fsync`, so a `gen-*.arc` file is
//!   either complete and sealed or does not exist.
//! * **Layered checksums** — superblock CRC, per-section CRCs, and a
//!   file-level trailer seal; a single flipped bit anywhere is detected
//!   at open ([`Archive::open`]) or by the online [`Archive::scrub`].
//! * **Loud failure** — every validation failure is a typed
//!   [`ArchiveError`]; recovery quarantines bad generations into
//!   `.quarantine/` ([`quarantine`]) and falls back to the previous
//!   generation or a full rebuild. A corrupt archive is never served.
//! * **Provable crash safety** — the install and attach paths hit the
//!   `arc.write` / `arc.sync` / `arc.rename` / `arc.map` fail points of
//!   [`repose_durability::FailPlan`], so crash suites abort at every
//!   stage and assert recovery.

#![warn(missing_docs)]

pub mod error;
pub mod format;
pub mod meta;
pub mod mmap;
pub mod reader;
pub mod writer;

pub use error::ArchiveError;
pub use meta::{ArchiveMeta, PartitionMeta};
pub use mmap::MappedFile;
pub use reader::{latest_valid, quarantine, Archive, LatestScan, ScrubReport};
pub use writer::{gen_file_name, list_generations, parse_gen_name, prune_generations, write_archive};
