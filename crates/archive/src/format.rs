//! The `RPARCH01` on-disk archive format: superblock, 8-aligned payload
//! sections, table of contents, sealed trailer.
//!
//! ```text
//! offset 0            SUPERBLOCK (64 bytes, CRC-sealed)
//! offset 64           section payloads, each 8-aligned, zero-padded gaps
//! toc_off             TOC: one 32-byte entry per section
//! total_len - 24      TRAILER (24 bytes): seal over the whole file
//! ```
//!
//! All integers are little-endian. Sections are the *raw element bytes*
//! of the arrays a frozen deployment is made of (point arenas, slot
//! tables, trie bitmap words, summary tables, ...), so attaching is a
//! bounds-and-checksum *validation* of an mmapped file, never a decode:
//! every array becomes a [`repose_succinct::FlatVec`] view into the
//! mapping with zero copies and zero pointer fixup.
//!
//! Integrity is layered: the superblock carries a CRC-32 of itself (a
//! torn or zeroed header is caught before any field is trusted); every
//! TOC entry carries a CRC-32 of its section (corruption is localized to
//! a named section — that is what [`crate::Archive::scrub`] re-verifies
//! online); and the trailer seals the entire byte range with a file-level
//! CRC-32 plus the total length (a truncated or tail-torn file fails
//! before the TOC is even walked). The trailer is written as part of the
//! same buffered image as everything else, so a torn install can never
//! look sealed.

use crate::ArchiveError;
use repose_durability::crc32;

/// Superblock magic: format name + major version, human-greppable.
pub const MAGIC: &[u8; 8] = b"RPARCH01";
/// Trailer magic.
pub const END_MAGIC: &[u8; 8] = b"RPARCEND";
/// Format version (bumped on any incompatible layout change).
pub const VERSION: u32 = 1;
/// Superblock size in bytes.
pub const SUPERBLOCK_LEN: usize = 64;
/// TOC entry size in bytes.
pub const TOC_ENTRY_LEN: usize = 32;
/// Trailer size in bytes.
pub const TRAILER_LEN: usize = 24;
/// The `partition` value of partition-independent sections (meta).
pub const NO_PARTITION: u32 = u32::MAX;

/// What a section holds. The numeric value is the on-disk `kind` tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum SectionKind {
    /// JSON meta: config, region, op sequence, per-partition scalars and
    /// pivots. Exactly one per archive, `partition = NO_PARTITION`.
    Meta = 0,
    /// `TrajStore` trajectory ids (`u64`).
    StoreIds = 1,
    /// `TrajStore` start-offset prefix table (`u64`).
    StoreStarts = 2,
    /// `TrajStore` point arena (`Point`, two `f64`s).
    StorePoints = 3,
    /// Dense child-bitmap words of the frozen trie (`u64`).
    TrieBcWords = 4,
    /// Sparse child-list offsets (`u32`).
    TrieSparseOffsets = 5,
    /// Varint-coded sparse child lists (`u8`).
    TrieSparseBytes = 6,
    /// Leaf-ness bitmap words (`u64`).
    TrieHasLeafWords = 7,
    /// Leaf member-range prefix table (`u64`).
    LeafOffsets = 8,
    /// Concatenated leaf member slots (`u32`).
    LeafMembers = 9,
    /// Concatenated member summaries (`TrajSummary`, 80 bytes).
    LeafSummaries = 10,
    /// Per-leaf `Dmax` (`f64`).
    LeafDmax = 11,
    /// Per-leaf shortest member length (`u32`).
    LeafNmin = 12,
    /// Interleaved per-node pivot intervals (`f64`, `2 * np` per node).
    Hr = 13,
}

impl SectionKind {
    /// Decodes an on-disk kind tag.
    pub fn from_tag(tag: u32) -> Option<Self> {
        use SectionKind::*;
        Some(match tag {
            0 => Meta,
            1 => StoreIds,
            2 => StoreStarts,
            3 => StorePoints,
            4 => TrieBcWords,
            5 => TrieSparseOffsets,
            6 => TrieSparseBytes,
            7 => TrieHasLeafWords,
            8 => LeafOffsets,
            9 => LeafMembers,
            10 => LeafSummaries,
            11 => LeafDmax,
            12 => LeafNmin,
            13 => Hr,
            _ => return None,
        })
    }

    /// Short human name, used in checksum/scrub error messages.
    pub fn name(self) -> &'static str {
        use SectionKind::*;
        match self {
            Meta => "meta",
            StoreIds => "store.ids",
            StoreStarts => "store.starts",
            StorePoints => "store.points",
            TrieBcWords => "trie.bc",
            TrieSparseOffsets => "trie.sparse_offsets",
            TrieSparseBytes => "trie.sparse_bytes",
            TrieHasLeafWords => "trie.has_leaf",
            LeafOffsets => "leaf.offsets",
            LeafMembers => "leaf.members",
            LeafSummaries => "leaf.summaries",
            LeafDmax => "leaf.dmax",
            LeafNmin => "leaf.nmin",
            Hr => "hr",
        }
    }
}

/// The decoded superblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Number of TOC entries.
    pub section_count: u32,
    /// Byte offset of the TOC.
    pub toc_off: u64,
    /// Byte length of the TOC.
    pub toc_len: u64,
    /// Operation sequence number the archive is current through — the
    /// recovery cutover point between archive state and WAL tail.
    pub op_seq: u64,
    /// Partition count of the archived deployment.
    pub partitions: u32,
}

impl Superblock {
    /// Encodes the 64-byte CRC-sealed superblock.
    pub fn encode(&self) -> [u8; SUPERBLOCK_LEN] {
        let mut b = [0u8; SUPERBLOCK_LEN];
        b[0..8].copy_from_slice(MAGIC);
        b[8..12].copy_from_slice(&VERSION.to_le_bytes());
        b[12..16].copy_from_slice(&self.section_count.to_le_bytes());
        b[16..24].copy_from_slice(&self.toc_off.to_le_bytes());
        b[24..32].copy_from_slice(&self.toc_len.to_le_bytes());
        b[32..40].copy_from_slice(&self.op_seq.to_le_bytes());
        b[40..44].copy_from_slice(&self.partitions.to_le_bytes());
        // bytes 44..60 reserved, zero
        let crc = crc32(&b[0..60]);
        b[60..64].copy_from_slice(&crc.to_le_bytes());
        b
    }

    /// Decodes and validates a superblock from the head of `bytes`.
    pub fn decode(bytes: &[u8]) -> Result<Self, ArchiveError> {
        if bytes.len() < SUPERBLOCK_LEN {
            return Err(ArchiveError::Format(format!(
                "file too short for a superblock ({} bytes)",
                bytes.len()
            )));
        }
        let b = &bytes[..SUPERBLOCK_LEN];
        let stored = u32::from_le_bytes(b[60..64].try_into().unwrap());
        if crc32(&b[0..60]) != stored {
            return Err(ArchiveError::Checksum("superblock CRC mismatch".into()));
        }
        if &b[0..8] != MAGIC {
            return Err(ArchiveError::Format("bad superblock magic".into()));
        }
        let version = u32::from_le_bytes(b[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(ArchiveError::Format(format!(
                "unsupported archive version {version} (this build reads {VERSION})"
            )));
        }
        Ok(Superblock {
            section_count: u32::from_le_bytes(b[12..16].try_into().unwrap()),
            toc_off: u64::from_le_bytes(b[16..24].try_into().unwrap()),
            toc_len: u64::from_le_bytes(b[24..32].try_into().unwrap()),
            op_seq: u64::from_le_bytes(b[32..40].try_into().unwrap()),
            partitions: u32::from_le_bytes(b[40..44].try_into().unwrap()),
        })
    }
}

/// One TOC entry: a named, checksummed byte range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TocEntry {
    /// What the section holds.
    pub kind: SectionKind,
    /// Which partition it belongs to ([`NO_PARTITION`] for meta).
    pub partition: u32,
    /// Byte offset of the section payload (8-aligned).
    pub offset: u64,
    /// Byte length of the payload.
    pub len: u64,
    /// CRC-32 of the payload bytes.
    pub crc: u32,
}

impl TocEntry {
    /// Encodes the 32-byte entry.
    pub fn encode(&self) -> [u8; TOC_ENTRY_LEN] {
        let mut b = [0u8; TOC_ENTRY_LEN];
        b[0..4].copy_from_slice(&(self.kind as u32).to_le_bytes());
        b[4..8].copy_from_slice(&self.partition.to_le_bytes());
        b[8..16].copy_from_slice(&self.offset.to_le_bytes());
        b[16..24].copy_from_slice(&self.len.to_le_bytes());
        b[24..28].copy_from_slice(&self.crc.to_le_bytes());
        // bytes 28..32 reserved, zero
        b
    }

    /// Decodes one entry.
    pub fn decode(b: &[u8]) -> Result<Self, ArchiveError> {
        debug_assert_eq!(b.len(), TOC_ENTRY_LEN);
        let tag = u32::from_le_bytes(b[0..4].try_into().unwrap());
        let kind = SectionKind::from_tag(tag)
            .ok_or_else(|| ArchiveError::Format(format!("unknown section kind tag {tag}")))?;
        Ok(TocEntry {
            kind,
            partition: u32::from_le_bytes(b[4..8].try_into().unwrap()),
            offset: u64::from_le_bytes(b[8..16].try_into().unwrap()),
            len: u64::from_le_bytes(b[16..24].try_into().unwrap()),
            crc: u32::from_le_bytes(b[24..28].try_into().unwrap()),
        })
    }

    /// Section label for error messages: `store.points[p3]`.
    pub fn label(&self) -> String {
        if self.partition == NO_PARTITION {
            self.kind.name().to_string()
        } else {
            format!("{}[p{}]", self.kind.name(), self.partition)
        }
    }
}

/// The decoded trailer seal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trailer {
    /// CRC-32 of every byte before the trailer.
    pub file_crc: u32,
    /// Total file length, trailer included.
    pub total_len: u64,
}

impl Trailer {
    /// Encodes the 24-byte trailer.
    pub fn encode(&self) -> [u8; TRAILER_LEN] {
        let mut b = [0u8; TRAILER_LEN];
        b[0..8].copy_from_slice(END_MAGIC);
        b[8..12].copy_from_slice(&self.file_crc.to_le_bytes());
        // bytes 12..16 reserved, zero
        b[16..24].copy_from_slice(&self.total_len.to_le_bytes());
        b
    }

    /// Decodes and fully validates the trailer at the end of `bytes`,
    /// including the file-level CRC over everything before it.
    pub fn decode_and_verify(bytes: &[u8]) -> Result<Self, ArchiveError> {
        if bytes.len() < SUPERBLOCK_LEN + TRAILER_LEN {
            return Err(ArchiveError::Format(format!(
                "file too short for a sealed archive ({} bytes)",
                bytes.len()
            )));
        }
        let b = &bytes[bytes.len() - TRAILER_LEN..];
        if &b[0..8] != END_MAGIC {
            return Err(ArchiveError::Format(
                "missing trailer seal (torn or truncated install)".into(),
            ));
        }
        let trailer = Trailer {
            file_crc: u32::from_le_bytes(b[8..12].try_into().unwrap()),
            total_len: u64::from_le_bytes(b[16..24].try_into().unwrap()),
        };
        if trailer.total_len != bytes.len() as u64 {
            return Err(ArchiveError::Format(format!(
                "trailer says {} bytes, file has {}",
                trailer.total_len,
                bytes.len()
            )));
        }
        let body = &bytes[..bytes.len() - TRAILER_LEN];
        if crc32(body) != trailer.file_crc {
            return Err(ArchiveError::Checksum("file-level CRC mismatch".into()));
        }
        Ok(trailer)
    }
}

/// Rounds `off` up to the next 8-byte boundary (section alignment).
pub fn align8(off: usize) -> usize {
    off.div_ceil(8) * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superblock_roundtrip_and_seal() {
        let sb = Superblock {
            section_count: 27,
            toc_off: 4096,
            toc_len: 27 * 32,
            op_seq: 99,
            partitions: 2,
        };
        let enc = sb.encode();
        assert_eq!(Superblock::decode(&enc).unwrap(), sb);
        // Any single-bit flip must be caught by the superblock CRC.
        for i in 0..SUPERBLOCK_LEN {
            let mut bad = enc;
            bad[i] ^= 0x01;
            assert!(Superblock::decode(&bad).is_err(), "flip at byte {i} accepted");
        }
    }

    #[test]
    fn toc_entry_roundtrip() {
        let e = TocEntry {
            kind: SectionKind::LeafSummaries,
            partition: 3,
            offset: 64,
            len: 800,
            crc: 0xDEAD_BEEF,
        };
        assert_eq!(TocEntry::decode(&e.encode()).unwrap(), e);
        assert_eq!(e.label(), "leaf.summaries[p3]");
    }

    #[test]
    fn trailer_seals_whole_file() {
        let mut file = vec![0u8; 96];
        file[..8].copy_from_slice(MAGIC);
        let crc = crc32(&file);
        let t = Trailer { file_crc: crc, total_len: (96 + TRAILER_LEN) as u64 };
        file.extend_from_slice(&t.encode());
        assert_eq!(Trailer::decode_and_verify(&file).unwrap(), t);
        // Truncation and body corruption are both refused.
        assert!(Trailer::decode_and_verify(&file[..file.len() - 1]).is_err());
        let mut bad = file.clone();
        bad[50] ^= 0x80;
        assert!(matches!(
            Trailer::decode_and_verify(&bad),
            Err(ArchiveError::Checksum(_))
        ));
    }

    #[test]
    fn every_kind_tag_roundtrips() {
        for tag in 0..=13u32 {
            let kind = SectionKind::from_tag(tag).unwrap();
            assert_eq!(kind as u32, tag);
            assert!(!kind.name().is_empty());
        }
        assert_eq!(SectionKind::from_tag(14), None);
    }
}
