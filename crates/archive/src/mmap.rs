//! Read-only file mapping without an external mmap crate.
//!
//! On Linux/x86-64 the archive file is mapped with a raw `mmap(2)`
//! syscall — attaching an index then costs no copy at all; pages fault in
//! from the kernel page cache as sections are touched. Everywhere else
//! (and whenever the syscall fails) the file is read once into an
//! 8-aligned heap buffer ([`AlignedBytes`]), which preserves every
//! alignment guarantee the zero-copy views rely on.

use repose_succinct::{AlignedBytes, ByteStore};
use std::fs::File;
use std::io::Read;
use std::path::Path;

/// A read-only view of a whole file, mapped when the platform allows it.
#[derive(Debug)]
pub struct MappedFile {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    Mapped(Mapping),
    Heap(AlignedBytes),
}

impl MappedFile {
    /// Opens `path` read-only: a true `mmap` on Linux/x86-64, a one-shot
    /// aligned heap read elsewhere or when mapping fails.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len() as usize;
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        if len > 0 {
            if let Some(m) = Mapping::map(&file, len) {
                return Ok(MappedFile { inner: Inner::Mapped(m) });
            }
        }
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        Ok(MappedFile { inner: Inner::Heap(AlignedBytes::copy_from(&buf)) })
    }

    /// Opens `path` into the heap fallback unconditionally — the
    /// copy-at-attach baseline the `restart` benchmark compares the
    /// mapping against.
    pub fn open_heap(path: &Path) -> std::io::Result<Self> {
        let mut file = File::open(path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        Ok(MappedFile { inner: Inner::Heap(AlignedBytes::copy_from(&buf)) })
    }

    /// Whether the bytes are a real kernel mapping (as opposed to the
    /// heap fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Inner::Mapped(_) => true,
            Inner::Heap(_) => false,
        }
    }
}

impl ByteStore for MappedFile {
    fn bytes(&self) -> &[u8] {
        match &self.inner {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Inner::Mapped(m) => m.as_slice(),
            Inner::Heap(b) => b.bytes(),
        }
    }
}

/// A raw private read-only `mmap(2)` mapping (Linux/x86-64 only; the
/// toolchain here has no libc crate, so the syscall is issued directly).
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
#[derive(Debug)]
struct Mapping {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is PROT_READ and MAP_PRIVATE — immutable shared
// bytes, exactly what &[u8] promises across threads.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe impl Send for Mapping {}
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe impl Sync for Mapping {}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
impl Mapping {
    const SYS_MMAP: i64 = 9;
    const SYS_MUNMAP: i64 = 11;
    const PROT_READ: i64 = 1;
    const MAP_PRIVATE: i64 = 2;

    /// Maps the first `len` bytes of `file`; `None` when the kernel
    /// refuses (the caller falls back to a heap read).
    fn map(file: &File, len: usize) -> Option<Self> {
        use std::os::unix::io::AsRawFd;
        debug_assert!(len > 0, "mmap of zero bytes is EINVAL");
        // SAFETY: a well-formed mmap syscall over a file descriptor we
        // own; the result is checked for the kernel's -errno range.
        let ret = unsafe {
            syscall6(
                Self::SYS_MMAP,
                0,
                len as i64,
                Self::PROT_READ,
                Self::MAP_PRIVATE,
                file.as_raw_fd() as i64,
                0,
            )
        };
        // Error returns are -errno, i.e. in [-4095, -1].
        if (-4095..0).contains(&ret) {
            return None;
        }
        Some(Mapping { ptr: ret as usize as *const u8, len })
    }

    fn as_slice(&self) -> &[u8] {
        // SAFETY: ptr/len come from a successful PROT_READ mapping that
        // lives as long as self (munmap only runs in Drop).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: unmapping exactly the region mmap returned.
        unsafe {
            syscall6(Self::SYS_MUNMAP, self.ptr as usize as i64, self.len as i64, 0, 0, 0, 0);
        }
    }
}

/// Raw Linux/x86-64 syscall (the standard `syscall` calling convention:
/// number in rax, args in rdi/rsi/rdx/r10/r8/r9, rcx/r11 clobbered).
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn syscall6(num: i64, a1: i64, a2: i64, a3: i64, a4: i64, a5: i64, a6: i64) -> i64 {
    let ret: i64;
    core::arch::asm!(
        "syscall",
        inlateout("rax") num => ret,
        in("rdi") a1,
        in("rsi") a2,
        in("rdx") a3,
        in("r10") a4,
        in("r8") a5,
        in("r9") a6,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack)
    );
    ret
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn scratch_file(tag: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "repose-archive-mmap-{tag}-{}",
            std::process::id()
        ));
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        path
    }

    #[test]
    fn mapped_bytes_match_file() {
        let data: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let path = scratch_file("roundtrip", &data);
        let map = MappedFile::open(&path).unwrap();
        assert_eq!(map.bytes(), &data[..]);
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        assert!(map.is_mapped(), "linux/x86-64 should get a real mapping");
        // The mapping base must satisfy the zero-copy alignment contract.
        assert_eq!(map.bytes().as_ptr() as usize % 8, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn heap_fallback_matches_file() {
        let data = b"heap fallback bytes".to_vec();
        let path = scratch_file("heap", &data);
        let heap = MappedFile::open_heap(&path).unwrap();
        assert_eq!(heap.bytes(), &data[..]);
        assert!(!heap.is_mapped());
        assert_eq!(heap.bytes().as_ptr() as usize % 8, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_file_maps_to_empty_bytes() {
        let path = scratch_file("empty", b"");
        let map = MappedFile::open(&path).unwrap();
        assert!(map.bytes().is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
