//! Offline stand-in for `parking_lot`: wraps the std sync primitives with
//! parking_lot's poison-free API (`lock()` returns the guard directly).
//! A poisoned std lock — some thread panicked while holding it — becomes a
//! panic here, which matches how this workspace treats worker panics.
//!
//! ```
//! let m = parking_lot::Mutex::new(5);
//! *m.lock() += 1;
//! assert_eq!(*m.lock(), 6);
//! let rw = parking_lot::RwLock::new(vec![1, 2]);
//! assert_eq!(rw.read().len(), 2);
//! rw.write().push(3);
//! assert_eq!(rw.read().len(), 3);
//! ```

#![warn(missing_docs)]

use std::sync;

/// Re-exported std guard type (parking_lot's guard has the same deref API).
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Re-exported std read-guard type.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Re-exported std write-guard type.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new unlocked mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A new unlocked lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_many_readers() {
        let rw = Arc::new(RwLock::new(41));
        *rw.write() += 1;
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let rw = Arc::clone(&rw);
                std::thread::spawn(move || *rw.read())
            })
            .collect();
        for r in readers {
            assert_eq!(r.join().unwrap(), 42);
        }
    }
}
