//! Derive macros for the vendored `serde` stand-in.
//!
//! Supports exactly the shapes this workspace serializes:
//!
//! * structs with named fields (serialized as a JSON object),
//! * tuple structs (serialized as a JSON array),
//! * enums whose variants are all unit variants (serialized as the
//!   variant-name string).
//!
//! Generics are not supported; the derive emits a compile error for them.
//! The expansion is generated as source text and re-parsed — no `syn` or
//! `quote`, because the build container is offline.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// (field name, field type source text)
    NamedStruct(String, Vec<(String, String)>),
    /// (arity, field type source texts)
    TupleStruct(String, Vec<String>),
    UnitStruct(String),
    /// (variant names)
    UnitEnum(String, Vec<String>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("valid error expansion")
}

/// Consumes leading attributes (`#[...]`) and visibility (`pub`,
/// `pub(...)`) from a token slice, returning the rest.
fn skip_attrs_and_vis(mut toks: &[TokenTree]) -> &[TokenTree] {
    loop {
        match toks {
            [TokenTree::Punct(p), TokenTree::Group(g), rest @ ..]
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                toks = rest;
            }
            [TokenTree::Ident(i), TokenTree::Group(g), rest @ ..]
                if i.to_string() == "pub" && g.delimiter() == Delimiter::Parenthesis =>
            {
                toks = rest;
            }
            [TokenTree::Ident(i), rest @ ..] if i.to_string() == "pub" => {
                toks = rest;
            }
            _ => return toks,
        }
    }
}

/// Splits a token sequence on top-level commas.
fn split_commas(toks: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for t in toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(t.clone()),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn tokens_to_source(toks: &[TokenTree]) -> String {
    toks.iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let toks = skip_attrs_and_vis(&toks);
    let (kind, rest) = match toks {
        [TokenTree::Ident(i), rest @ ..] => (i.to_string(), rest),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    let (name, rest) = match rest {
        [TokenTree::Ident(i), rest @ ..] => (i.to_string(), rest),
        _ => return Err("expected type name".into()),
    };
    if matches!(rest.first(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive (vendored) does not support generic type `{name}`"
        ));
    }
    match kind.as_str() {
        "struct" => match rest {
            [TokenTree::Group(g)] if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut fields = Vec::new();
                for field in split_commas(&body) {
                    let field = skip_attrs_and_vis(&field);
                    if field.is_empty() {
                        continue;
                    }
                    let (fname, ftoks) = match field {
                        [TokenTree::Ident(i), TokenTree::Punct(c), ty @ ..]
                            if c.as_char() == ':' =>
                        {
                            (i.to_string(), ty)
                        }
                        _ => return Err(format!("unparsable field in `{name}`")),
                    };
                    fields.push((fname, tokens_to_source(ftoks)));
                }
                Ok(Shape::NamedStruct(name, fields))
            }
            [TokenTree::Group(g), ..] if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut tys = Vec::new();
                for field in split_commas(&body) {
                    let field = skip_attrs_and_vis(&field);
                    if field.is_empty() {
                        continue;
                    }
                    tys.push(tokens_to_source(field));
                }
                Ok(Shape::TupleStruct(name, tys))
            }
            [] | [TokenTree::Punct(_)] => Ok(Shape::UnitStruct(name)),
            _ => Err(format!("unsupported struct form for `{name}`")),
        },
        "enum" => match rest {
            [TokenTree::Group(g)] if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut variants = Vec::new();
                for var in split_commas(&body) {
                    let var = skip_attrs_and_vis(&var);
                    match var {
                        [] => continue,
                        [TokenTree::Ident(i)] => variants.push(i.to_string()),
                        [TokenTree::Ident(i), ..] => {
                            return Err(format!(
                                "serde_derive (vendored) only supports unit enum \
                                 variants; `{name}::{i}` has data"
                            ))
                        }
                        _ => return Err(format!("unparsable variant in `{name}`")),
                    }
                }
                Ok(Shape::UnitEnum(name, variants))
            }
            _ => Err(format!("unsupported enum form for `{name}`")),
        },
        other => Err(format!("cannot derive for `{other}`")),
    }
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let src = match shape {
        Shape::NamedStruct(name, fields) => {
            let inserts: String = fields
                .iter()
                .map(|(f, _)| {
                    format!(
                        "m.insert({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut m = ::serde::Map::new();\n\
                         {inserts}\
                         ::serde::Value::Object(m)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct(name, tys) => {
            let pushes: String = (0..tys.len())
                .map(|i| format!("a.push(::serde::Serialize::to_value(&self.{i}));\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut a = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Array(a)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitStruct(name) => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::UnitEnum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::String({v:?}.to_string()),\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse().expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let src = match shape {
        Shape::NamedStruct(name, fields) => {
            let builds: String = fields
                .iter()
                .map(|(f, ty)| {
                    format!(
                        "{f}: <{ty} as ::serde::Deserialize>::from_value(v.get_field({f:?})?)?,\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {builds} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct(name, tys) => {
            let arity = tys.len();
            let builds: String = tys
                .iter()
                .enumerate()
                .map(|(i, ty)| format!("<{ty} as ::serde::Deserialize>::from_value(&a[{i}])?,\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let a = v.as_array().ok_or_else(|| ::serde::Error::new(\
                             \"expected array for tuple struct {name}\"))?;\n\
                         if a.len() != {arity} {{\n\
                             return ::std::result::Result::Err(::serde::Error::new(\
                                 \"wrong arity for tuple struct {name}\"));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}({builds}))\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitStruct(name) => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name})\n\
                 }}\n\
             }}"
        ),
        Shape::UnitEnum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let s = v.as_str().ok_or_else(|| ::serde::Error::new(\
                             \"expected string for enum {name}\"))?;\n\
                         match s {{\n\
                             {arms}\
                             other => ::std::result::Result::Err(::serde::Error::new(\
                                 format!(\"unknown {name} variant {{other}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse().expect("generated Deserialize impl parses")
}
