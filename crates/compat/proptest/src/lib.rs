//! Offline stand-in for `proptest`: deterministic random-case testing.
//!
//! Implements the subset this workspace uses — the [`proptest!`] macro,
//! range/tuple/`vec`/`any` strategies, `prop_map`, and the `prop_assert*`
//! macros. Cases are generated from a seed derived from the test's module
//! path and name, so failures are reproducible run-to-run. There is **no
//! shrinking**: a failing case reports its inputs via the assertion
//! message and its case number instead.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(64))]
//!     // `#[test]` would go here in a test module; a plain fn is callable.
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use std::ops::Range;

pub mod test_runner {
    //! Error type and config, mirroring proptest's module layout.

    /// A failed test case (carries the assertion message).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }

        /// Alias of [`TestCaseError::fail`], matching proptest.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub use test_runner::{ProptestConfig, TestCaseError};

/// The deterministic generator driving each test case.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator for case number `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform sample from a half-open range.
    pub fn random_range<T: rand::SampleUniform>(&mut self, r: Range<T>) -> T {
        self.0.random_range(r)
    }
}

/// A generator of test-case values.
pub trait Strategy: Sized {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> MapStrategy<Self, F> {
        MapStrategy { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;
    fn sample_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+) ;)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A, 1 B) ;
    (0 A, 1 B, 2 C) ;
    (0 A, 1 B, 2 C, 3 D) ;
    (0 A, 1 B, 2 C, 3 D, 4 E) ;
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F) ;
}

/// A type-erased strategy (see [`boxed`]).
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Erases a strategy's type so differently-shaped strategies for the same
/// value type can live in one collection (the basis of [`prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    BoxedStrategy(Box::new(move |rng| s.sample_value(rng)))
}

/// A uniform choice among strategies (see [`prop_oneof!`]).
pub struct UnionStrategy<T>(Vec<BoxedStrategy<T>>);

impl<T> Strategy for UnionStrategy<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.0.len());
        self.0[i].sample_value(rng)
    }
}

/// A strategy drawing uniformly from `alternatives` (must be non-empty).
pub fn union<T>(alternatives: Vec<BoxedStrategy<T>>) -> UnionStrategy<T> {
    assert!(!alternatives.is_empty(), "prop_oneof! of nothing");
    UnionStrategy(alternatives)
}

/// Uniform choice among same-valued strategies, like upstream's
/// `prop_oneof!` (unweighted form only).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::boxed($s)),+])
    };
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values spanning many magnitudes.
        let m = rng.random_range(-1.0f64..1.0);
        let e = rng.random_range(-60i32..60);
        m * (e as f64).exp2()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.random_range(self.len.clone())
            };
            (0..n).map(|_| self.element.sample_value(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` values with a length drawn from
    /// `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, collection, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{prop_oneof, Arbitrary, BoxedStrategy, Just, Strategy};
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__l, __r) = (&$a, &$b);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", __l, __r),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: {:?} != {:?}", format!($($fmt)+), __l, __r),
            ));
        }
    }};
}

/// Fails the current test case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__l, __r) = (&$a, &$b);
        if __l == __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", __l, __r),
            ));
        }
    }};
}

/// Declares property tests: each `fn` runs `config.cases` times with
/// freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __test_name = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::for_case(__test_name, __case as u64);
                    $( let $arg = $crate::Strategy::sample_value(&($strat), &mut __rng); )+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            __test_name, __case + 1, __config.cases, e
                        );
                    }
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_strategy_lengths(v in collection::vec(0u8..255, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn nested_tuples(pts in collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..5)) {
            for (x, y) in &pts {
                prop_assert!(*x < 1.0 && *y < 1.0, "({x}, {y}) out of bounds");
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_and_prop_map(
            v in collection::vec(0u32..10, 1..4).prop_map(|v| v.len())
        ) {
            prop_assert!((1..4).contains(&v));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_case("x", 7);
        let mut b = crate::TestRng::for_case("x", 7);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("x", 8);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
