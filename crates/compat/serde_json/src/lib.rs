//! Offline stand-in for `serde_json`: renders the vendored [`serde::Value`]
//! tree to JSON text and parses it back.
//!
//! Numbers round-trip exactly: integers stay integers, and floats are
//! written with Rust's shortest round-trip formatting. Non-finite floats are
//! written as the bare tokens `Infinity` / `-Infinity` / `NaN` (as Python's
//! `json` does) so that index payloads containing sentinels survive a
//! round-trip; the parser accepts the same tokens.
//!
//! ```
//! let v = serde_json::json!({ "name": "repose", "partitions": 64, "qt_s": 0.25 });
//! let text = serde_json::to_string(&v).unwrap();
//! let back: serde_json::Value = serde_json::from_str(&text).unwrap();
//! assert_eq!(back["partitions"].as_u64(), Some(64));
//! ```

#![warn(missing_docs)]

pub use serde::{Error, Map, Number, Value};

use serde::{Deserialize, Serialize};

/// Serializes `value` into the [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// [`to_value`] for macro use; infallible by construction.
pub fn to_value_must<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serializes `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable JSON text (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

/// Builds a [`Value`] from JSON-shaped syntax.
///
/// Object values and array elements may be arbitrary expressions whose
/// types implement the vendored `serde::Serialize`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::to_value_must(&$elem)),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($key.to_string(), $crate::to_value_must(&$val)); )*
        $crate::Value::Object(m)
    }};
    ($other:expr) => { $crate::to_value_must(&$other) };
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, e, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, e)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, e, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::I(v) => out.push_str(&v.to_string()),
        Number::U(v) => out.push_str(&v.to_string()),
        Number::F(v) => {
            if v.is_nan() {
                out.push_str("NaN");
            } else if v == f64::INFINITY {
                out.push_str("Infinity");
            } else if v == f64::NEG_INFINITY {
                out.push_str("-Infinity");
            } else {
                // {:?} is Rust's shortest round-trip float formatting and
                // always keeps a '.' or exponent, preserving float-ness.
                out.push_str(&format!("{v:?}"));
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') if self.eat_word("null") => Ok(Value::Null),
            Some(b't') if self.eat_word("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_word("false") => Ok(Value::Bool(false)),
            Some(b'N') if self.eat_word("NaN") => Ok(Value::Number(Number::F(f64::NAN))),
            Some(b'I') if self.eat_word("Infinity") => {
                Ok(Value::Number(Number::F(f64::INFINITY)))
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut a = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(a));
                }
                loop {
                    self.skip_ws();
                    a.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(a));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut m = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.parse_value()?;
                    m.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(m));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b'-') if self.bytes[self.pos + 1..].starts_with(b"Infinity") => {
                self.pos += 1 + "Infinity".len();
                Ok(Value::Number(Number::F(f64::NEG_INFINITY)))
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require the low half.
                                if !self.eat_word("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                s.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| Error::new("invalid code point"))?,
                                );
                            } else {
                                s.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error::new("invalid code point"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::new(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("bad \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("bad \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(if i >= 0 {
                    Number::U(i as u64)
                } else {
                    Number::I(i)
                }));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for text in ["null", "true", "false", "0", "-12", "3.5", "1e300", "\"hi\""] {
            let v: Value = from_str(text).unwrap();
            let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn float_precision_survives() {
        let xs = vec![0.1f64, 1.0 / 3.0, f64::MIN_POSITIVE, 1e-300, 12345.6789];
        let text = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn non_finite_floats_roundtrip() {
        let xs = vec![f64::INFINITY, f64::NEG_INFINITY];
        let text = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(xs, back);
        let nan: Vec<f64> = from_str(&to_string(&vec![f64::NAN]).unwrap()).unwrap();
        assert!(nan[0].is_nan());
    }

    #[test]
    fn json_macro_shapes() {
        let v = json!({ "a": 1u64, "b": [1.5, 2.5], "c": "x" });
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["b"][1].as_f64(), Some(2.5));
        assert_eq!(v["c"].as_str(), Some("x"));
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(7u64).as_u64(), Some(7));
    }

    #[test]
    fn strings_with_escapes_roundtrip() {
        let s = "line\nquote\"back\\slash\ttab\u{1F600}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(s, back);
        // \u escapes parse too
        let v: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, "\u{1F600}");
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v = json!({ "rows": [ json!({ "x": 1u64 }), json!({ "x": 2u64 }) ] });
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }
}
