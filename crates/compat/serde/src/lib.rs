//! Offline stand-in for `serde` (+ `serde_derive`).
//!
//! The build container has no network access, so the workspace vendors a
//! small value-tree serialization framework under the familiar names: a
//! [`Serialize`]/[`Deserialize`] trait pair convertible to/from a JSON-like
//! [`Value`], with `#[derive(Serialize, Deserialize)]` support for plain
//! structs (named or tuple fields) and unit-variant enums — exactly the
//! shapes this workspace serializes. `serde_json` (also vendored) renders
//! [`Value`] to JSON text and parses it back.
//!
//! This is *not* API-compatible with real serde beyond the subset used
//! here; it is deliberately simple (one intermediate [`Value`] tree, no
//! zero-copy, no visitors).
//!
//! ```
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Debug, PartialEq, Serialize, Deserialize)]
//! struct Span { lo: u32, hi: u32 }
//!
//! let v = serde::Serialize::to_value(&Span { lo: 3, hi: 9 });
//! let back = <Span as serde::Deserialize>::from_value(&v).unwrap();
//! assert_eq!(back, Span { lo: 3, hi: 9 });
//! ```

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-like number: integers are kept exact, floats are `f64`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A signed integer (used for negative values).
    I(i64),
    /// An unsigned integer.
    U(u64),
    /// A binary64 float.
    F(f64),
}

impl Number {
    /// The value as `f64` (lossy for giant integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::I(v) => v as f64,
            Number::U(v) => v as f64,
            Number::F(v) => v,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::I(v) if v >= 0 => Some(v as u64),
            Number::U(v) => Some(v),
            Number::F(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I(v) => Some(v),
            Number::U(v) => i64::try_from(v).ok(),
            Number::F(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::I(a), Number::I(b)) => a == b,
            (Number::U(a), Number::U(b)) => a == b,
            (Number::F(a), Number::F(b)) => a == b,
            _ => match (self.as_i64(), other.as_i64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

/// An order-preserving string-keyed map of [`Value`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts `value` under `key`, replacing any previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Looks up `key` mutably, inserting [`Value::Null`] if absent.
    pub fn get_or_insert_null(&mut self, key: &str) -> &mut Value {
        if let Some(i) = self.entries.iter().position(|(k, _)| k == key) {
            return &mut self.entries[i].1;
        }
        self.entries.push((key.to_string(), Value::Null));
        &mut self.entries.last_mut().expect("just pushed").1
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// The serialization value tree (JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// A string-keyed object.
    Object(Map),
}

impl Value {
    /// Object member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Object member lookup that reports *which* key was missing — the
    /// workhorse of derived [`Deserialize`] impls.
    pub fn get_field(&self, key: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(m) => m
                .get(key)
                .ok_or_else(|| Error::new(format!("missing field `{key}`"))),
            other => Err(Error::new(format!(
                "expected object with field `{key}`, got {}",
                other.kind()
            ))),
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

static NULL_VALUE: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        match self {
            Value::Object(m) => m.get_or_insert_null(key),
            other => panic!("cannot index {} with a string key", other.kind()),
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => &a[i],
            other => panic!("cannot index {} with a usize", other.kind()),
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::new(format!("expected bool, got {}", v.kind())))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::new(format!(
                        concat!("expected ", stringify!($t), ", got {}"), v.kind())))?;
                <$t>::try_from(n).map_err(|_| Error::new(format!(
                    concat!("value {} out of range for ", stringify!($t)), n)))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::new(format!(
                        concat!("expected ", stringify!($t), ", got {}"), v.kind())))?;
                <$t>::try_from(n).map_err(|_| Error::new(format!(
                    concat!("value {} out of range for ", stringify!($t)), n)))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::new(format!("expected f64, got {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::new(format!("expected string, got {}", v.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::new(format!("expected array, got {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+) ;)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v
                    .as_array()
                    .ok_or_else(|| Error::new(format!("expected tuple array, got {}", v.kind())))?;
                const ARITY: usize = [$(stringify!($n)),+].len();
                if a.len() != ARITY {
                    return Err(Error::new(format!(
                        "expected {}-tuple, got array of {}", ARITY, a.len())));
                }
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A) ;
    (0 A, 1 B) ;
    (0 A, 1 B, 2 C) ;
    (0 A, 1 B, 2 C, 3 D) ;
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::new(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::new(format!("expected object, got {}", other.kind()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&3.25f64.to_value()).unwrap(), 3.25);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn compound_roundtrip() {
        let v = vec![(1.5f64, 2.5f64), (3.0, 4.0)];
        let val = v.to_value();
        let back: Vec<(f64, f64)> = Deserialize::from_value(&val).unwrap();
        assert_eq!(back, v);

        let o: Option<u64> = None;
        assert_eq!(o.to_value(), Value::Null);
        let some: Option<u64> = Option::from_value(&5u64.to_value()).unwrap();
        assert_eq!(some, Some(5));
    }

    #[test]
    fn field_errors_name_the_field() {
        let mut m = Map::new();
        m.insert("a".into(), 1u64.to_value());
        let obj = Value::Object(m);
        assert!(obj.get_field("a").is_ok());
        let err = obj.get_field("b").unwrap_err();
        assert!(err.to_string().contains("`b`"));
    }

    #[test]
    fn index_operators() {
        let mut obj = Value::Object(Map::new());
        obj["x"] = 1u64.to_value();
        assert_eq!(obj["x"].as_u64(), Some(1));
        assert_eq!(obj["missing"], Value::Null);
    }
}
