//! Offline stand-in for `criterion`: a minimal wall-clock timing harness
//! exposing the group/bench API the workspace's benches use. No statistics
//! beyond min/mean, no plots, no baselines — each bench runs a short warmup
//! and a fixed sample of iterations and prints one line.
//!
//! ```
//! use criterion::{BenchmarkId, Criterion};
//!
//! let mut c = Criterion::default();
//! let mut group = c.benchmark_group("doc");
//! group.sample_size(10);
//! group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
//! group.bench_with_input(BenchmarkId::from_parameter(42), &42u64, |b, &n| {
//!     b.iter(|| n * 2)
//! });
//! group.finish();
//! ```

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard black box (criterion's own is deprecated in
/// favour of it).
pub use std::hint::black_box;

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Registers a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function("", f);
        group.finish();
    }
}

/// A parameterized benchmark name.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id carrying only a parameter value.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId { text: p.to_string() }
    }

    /// An id of the form `function/parameter`.
    pub fn new(function: impl Into<String>, p: impl Display) -> Self {
        BenchmarkId { text: format!("{}/{}", function.into(), p) }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted and ignored (kept for call-site compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            min: Duration::MAX,
            mean: Duration::ZERO,
        };
        f(&mut b);
        let label = format!("{}/{}", self.name, id);
        println!(
            "bench {label:<40} min {:>12.3?}  mean {:>12.3?}  ({} samples)",
            b.min, b.mean, self.sample_size
        );
        self
    }

    /// Runs one benchmark that receives an input by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times closures.
pub struct Bencher {
    sample_size: usize,
    min: Duration,
    mean: Duration,
}

impl Bencher {
    /// Times `routine`: one warmup call, then `sample_size` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.min = min;
        self.mean = total / self.sample_size as u32;
    }
}

/// Declares a benchmark group runner, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| runs += 1);
        });
        group.finish();
        // 1 warmup + 3 samples
        assert_eq!(runs, 4);
    }
}
