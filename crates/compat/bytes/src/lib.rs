//! Offline stand-in for the `bytes` crate: the [`Buf`]/[`BufMut`] cursor
//! traits, implemented for byte slices and `Vec<u8>` — the surface the
//! succinct varint codec uses.
//!
//! ```
//! use bytes::{Buf, BufMut};
//!
//! let mut buf = Vec::new();
//! buf.put_u8(0x2A);
//! buf.put_f64_le(1.5);
//! let mut r = &buf[..];
//! assert_eq!(r.get_u8(), 0x2A);
//! assert_eq!(r.get_f64_le(), 1.5);
//! assert!(!r.has_remaining());
//! ```

#![warn(missing_docs)]

/// A cursor over readable bytes.
pub trait Buf {
    /// Number of bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `dst.len()` bytes, advancing the cursor.
    ///
    /// # Panics
    /// If fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// A growable sink of writable bytes.
pub trait BufMut {
    /// Appends all of `src`.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_f64_le(-0.125);
        let mut r = &buf[..];
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_f64_le(), -0.125);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1];
        r.get_u32_le();
    }
}
