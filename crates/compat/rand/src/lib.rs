//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! tiny slice of the `rand` API it actually uses: a seedable deterministic
//! generator ([`rngs::StdRng`]), uniform range sampling ([`RngExt`]), and
//! distinct index sampling ([`seq::index::sample`]). The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically solid for test
//! workloads and completely deterministic per seed, which is all the
//! experiments require.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{RngExt, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x = rng.random_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&x));
//! // Same seed, same stream.
//! let mut again = StdRng::seed_from_u64(7);
//! assert_eq!(again.random_range(0.0..1.0), x);
//! ```

#![warn(missing_docs)]

use std::ops::Range;

/// Sources of random bits.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling of a value from a half-open range.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[lo, hi)`.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range");
                let width = (hi as i128 - lo as i128) as u128;
                // Multiply-shift reduction; bias is < 2^-64, irrelevant here.
                let r = ((rng.next_u64() as u128 * width) >> 64) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range");
        // 53 random mantissa bits -> unit in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = lo + unit * (hi - lo);
        if v < hi {
            v
        } else {
            // Guard against rounding up to the excluded endpoint.
            f64::from_bits(hi.to_bits() - 1)
        }
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_uniform(rng, lo as f64, hi as f64) as f32
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// Samples uniformly from the half-open `range`.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_uniform(self, range.start, range.end)
    }

    /// A uniformly random `bool`.
    fn random_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), state-expanded from the seed with SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling.
pub mod seq {
    /// Index sampling without replacement.
    pub mod index {
        use crate::{RngCore, RngExt};

        /// A set of distinct indices in `0..length`, in sampling order.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The indices as a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices uniformly from `0..length`
        /// (partial Fisher-Yates shuffle).
        ///
        /// # Panics
        /// If `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(
            rng: &mut R,
            length: usize,
            amount: usize,
        ) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} distinct indices from 0..{length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.random_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::index::sample;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.random_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&f));
            let u = rng.random_range(3usize..9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let idxs = sample(&mut rng, 100, 30).into_vec();
        assert_eq!(idxs.len(), 30);
        let mut sorted = idxs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
        assert!(idxs.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_all() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut idxs = sample(&mut rng, 10, 10).into_vec();
        idxs.sort_unstable();
        assert_eq!(idxs, (0..10).collect::<Vec<_>>());
    }
}
