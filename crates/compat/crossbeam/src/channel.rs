//! Offline stand-in for `crossbeam-channel`: the [`unbounded`] MPMC
//! channel, backed by `Mutex<VecDeque>` + `Condvar`.
//!
//! Only the slice of the API this workspace uses is provided: unbounded
//! capacity, cloneable senders *and* receivers (multiple consumers pop
//! from one queue — the property `std::sync::mpsc` lacks), blocking
//! `recv`, and disconnection when the last handle on the other side is
//! dropped.
//!
//! ```
//! let (tx, rx) = crossbeam::channel::unbounded();
//! let rx2 = rx.clone();
//! tx.send(1).unwrap();
//! tx.send(2).unwrap();
//! let a = rx.recv().unwrap();
//! let b = rx2.recv().unwrap();
//! assert_eq!(a + b, 3);
//! drop(tx);
//! assert!(rx.recv().is_err()); // all senders gone, queue drained
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when every [`Receiver`] has been
/// dropped; the unsent value is handed back.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Debug for SendError<T> {
    // Like crossbeam's: no `T: Debug` bound, the payload is elided.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Error returned by [`Receiver::recv`] when the queue is empty and every
/// [`Sender`] has been dropped.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message (senders may still exist).
    Timeout,
    /// The queue is empty and every sender has been dropped.
    Disconnected,
}

struct Chan<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// The sending half of an [`unbounded`] channel. Cloneable.
pub struct Sender<T>(Arc<Chan<T>>);

/// The receiving half of an [`unbounded`] channel. Cloneable: clones pop
/// from the *same* queue (each message is delivered to exactly one
/// receiver), which is what makes the channel usable as a work queue.
pub struct Receiver<T>(Arc<Chan<T>>);

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender(Arc::clone(&chan)), Receiver(chan))
}

impl<T> Sender<T> {
    /// Enqueues `value`, waking one blocked receiver. Fails only when
    /// every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.0.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        self.0
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(value);
        self.0.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.senders.fetch_add(1, Ordering::Relaxed);
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake every blocked receiver so it can
            // observe disconnection. The notification must happen with the
            // queue lock held — otherwise a receiver that has already
            // checked `senders` (seeing 1) but not yet parked on the
            // condvar would miss this wakeup and block forever.
            let _queue = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            self.0.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message is available (returning it) or every sender
    /// has been dropped *and* the queue is drained (returning
    /// [`RecvError`]).
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.0.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            queue = self
                .0
                .ready
                .wait(queue)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks up to `timeout` for a message. Returns the message,
    /// [`RecvTimeoutError::Disconnected`] when every sender has been
    /// dropped and the queue is drained, or
    /// [`RecvTimeoutError::Timeout`] when the budget elapses first.
    pub fn recv_timeout(
        &self,
        timeout: std::time::Duration,
    ) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut queue = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.0.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = std::time::Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now).filter(|r| !r.is_zero())
            else {
                return Err(RecvTimeoutError::Timeout);
            };
            let (q, _timed_out) = self
                .0
                .ready
                .wait_timeout(queue, remaining)
                .unwrap_or_else(|e| e.into_inner());
            // Spurious wakeups and timeouts re-check the queue and the
            // deadline at the top of the loop; no separate handling needed.
            queue = q;
        }
    }

    /// Pops a message without blocking (`None` when the queue is empty,
    /// whether or not senders remain).
    pub fn try_recv(&self) -> Option<T> {
        self.0
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.receivers.fetch_add(1, Ordering::Relaxed);
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.0.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_single_consumer() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..5).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn each_message_delivered_to_exactly_one_consumer() {
        let (tx, rx) = unbounded::<u64>();
        const N: u64 = 1000;
        const WORKERS: usize = 4;
        let sum: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..WORKERS)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move || {
                        let mut local = 0u64;
                        while let Ok(v) = rx.recv() {
                            local += v;
                        }
                        local
                    })
                })
                .collect();
            for i in 1..=N {
                tx.send(i).unwrap();
            }
            drop(tx); // disconnect: workers drain and exit
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(sum, N * (N + 1) / 2);
    }

    #[test]
    fn recv_errors_after_last_sender_drops() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7), "queued items survive sender drops");
        drop(tx2);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_last_receiver_drops() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(3), Err(SendError(3)));
    }

    #[test]
    fn blocked_receiver_wakes_on_send() {
        let (tx, rx) = unbounded();
        std::thread::scope(|s| {
            let h = s.spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send(42).unwrap();
            assert_eq!(h.join().unwrap(), Ok(42));
        });
    }

    #[test]
    fn recv_timeout_returns_queued_message_immediately() {
        let (tx, rx) = unbounded();
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::ZERO), Ok(9));
    }

    #[test]
    fn recv_timeout_times_out_then_disconnects() {
        let (tx, rx) = unbounded::<i32>();
        let tiny = std::time::Duration::from_millis(5);
        assert_eq!(rx.recv_timeout(tiny), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(rx.recv_timeout(tiny), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn recv_timeout_wakes_on_send() {
        let (tx, rx) = unbounded();
        std::thread::scope(|s| {
            let h = s.spawn(move || rx.recv_timeout(std::time::Duration::from_secs(10)));
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send(42).unwrap();
            assert_eq!(h.join().unwrap(), Ok(42));
        });
    }

    #[test]
    fn try_recv_never_blocks() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.try_recv(), None);
        tx.send(1).unwrap();
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(rx.try_recv(), None);
    }
}
