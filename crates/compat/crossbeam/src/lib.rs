//! Offline stand-in for `crossbeam`: the [`scope`] API, backed by
//! `std::thread::scope` (which has provided structured borrowing of stack
//! data since Rust 1.63), and the [`channel`] module's unbounded MPMC
//! queue, backed by a mutex + condvar.
//!
//! ```
//! let data = vec![1, 2, 3, 4];
//! let sum = crossbeam::scope(|s| {
//!     let (a, b) = data.split_at(2);
//!     let h1 = s.spawn(|_| a.iter().sum::<i32>());
//!     let h2 = s.spawn(|_| b.iter().sum::<i32>());
//!     h1.join().unwrap() + h2.join().unwrap()
//! })
//! .unwrap();
//! assert_eq!(sum, 10);
//! ```

#![warn(missing_docs)]

pub mod channel;

use std::thread;

/// Handle for spawning threads that may borrow from the enclosing scope.
///
/// The closure passed to [`Scope::spawn`] receives the scope again, like
/// crossbeam's, so nested spawns work.
pub struct Scope<'scope, 'env: 'scope>(&'scope thread::Scope<'scope, 'env>);

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; it is joined when the scope ends.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.0;
        self.0.spawn(move || f(&Scope(inner)))
    }
}

/// Runs `f` with a [`Scope`]; all spawned threads are joined before this
/// returns. Unlike crossbeam, a panicking child propagates the panic at
/// scope exit instead of producing `Err` — the `Result` wrapper is kept
/// only for call-site compatibility and is always `Ok` when it returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope(s))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_borrow_stack_data() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let hits = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
