//! The competing algorithms of Section VII: distributed linear scan (LS),
//! DFT (segment R-trees, Xie et al. PVLDB'17) and DITA (pivot-based tries,
//! Shang et al. SIGMOD'18).
//!
//! Each baseline follows its paper's algorithmic skeleton at the fidelity
//! the REPOSE evaluation depends on:
//!
//! * **LS** — exact distances in every partition, master-side merge.
//! * **DFT** — trajectories are decomposed into segments; segments are
//!   globally partitioned by centroid (homogeneous); each partition holds
//!   an STR R-tree over its segment MBRs *and a copy of every trajectory
//!   owning a local segment* (the "regrouping" requirement that gives DFT
//!   its ~4× index size in Table IV). Queries estimate a distance threshold
//!   from `C·k` random samples — the source of DFT's unstable query times.
//! * **DITA** — per-trajectory pivot points (first/last + high-curvature
//!   interior points), global STR partitioning by (first, last) point,
//!   local first/last-cell trie with pivot-based lower bounds, and top-k by
//!   iterative threshold halving over range queries. No Hausdorff support,
//!   matching the paper.
//!
//! All three execute on the same simulated [`repose_cluster::Cluster`] as
//! REPOSE, so query times (simulated makespans) are directly comparable.
//!
//! ```
//! use repose_baselines::LinearScan;
//! use repose_cluster::ClusterConfig;
//! use repose_distance::{Measure, MeasureParams};
//! use repose_model::{Dataset, Point, Trajectory};
//!
//! let trajs: Vec<Trajectory> = (0..40)
//!     .map(|i| {
//!         let y = (i % 8) as f64;
//!         Trajectory::new(i, (0..6).map(|j| Point::new(j as f64, y)).collect())
//!     })
//!     .collect();
//! let data = Dataset::from_trajectories(trajs);
//! let cluster = ClusterConfig { workers: 2, cores_per_worker: 2, timing_repeats: 1 };
//!
//! // The exact-but-slow yardstick every index is measured against.
//! let ls = LinearScan::build(&data, cluster, 4, Measure::Hausdorff, MeasureParams::default());
//! let query: Vec<Point> = (0..6).map(|j| Point::new(j as f64, 0.2)).collect();
//! let out = ls.query(&query, 3);
//! assert_eq!(out.hits.len(), 3);
//! assert_eq!(out.hits[0].id, 0); // the y = 0 trip wins
//! ```

#![warn(missing_docs)]

mod dft;
mod dita;
mod ls;

pub use dft::{Dft, DftConfig};
pub use dita::{Dita, DitaConfig};
pub use ls::LinearScan;

use repose_cluster::JobStats;
use repose_model::TrajId;

/// A scored hit returned by a baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineHit {
    /// Trajectory id.
    pub id: TrajId,
    /// Distance to the query.
    pub dist: f64,
}

/// Outcome of one distributed baseline query.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// Global top-k, ascending by distance (ties by id).
    pub hits: Vec<BaselineHit>,
    /// Scheduling stats; `job.makespan` is the simulated query time.
    pub job: JobStats,
}

pub(crate) fn merge_top_k(
    mut hits: Vec<BaselineHit>,
    k: usize,
) -> Vec<BaselineHit> {
    hits.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
    hits.dedup_by_key(|h| h.id);
    hits.truncate(k);
    hits
}

/// Exact refinement of `(lower_bound, id, points)` candidates under a
/// running top-k threshold — the early-abandoning counterpart of "score
/// every candidate, sort, truncate to k" that DITA and DFT used to do.
/// A thin adapter over
/// [`repose_distance::MeasureParams::refine_by_bound`]; see there for the
/// ordering, tie, and `cap` (inclusive) semantics. The result is the k
/// smallest `(dist, id)` pairs among candidates with `dist <= cap` —
/// identical to what exhaustive exact scoring would keep.
pub(crate) fn refine_top_k(
    cands: Vec<(f64, TrajId, &[repose_model::Point])>,
    query: &[repose_model::Point],
    measure: repose_distance::Measure,
    params: &repose_distance::MeasureParams,
    k: usize,
    cap: f64,
) -> Vec<BaselineHit> {
    params
        .refine_by_bound(measure, query, k, cap, cands, |_| {})
        .into_iter()
        .map(|(dist, id)| BaselineHit { id, dist })
        .collect()
}

/// Whether baseline partitions follow their paper's homogeneous placement
/// or REPOSE's heterogeneous round-robin (the Heter-DITA / Heter-DFT
/// variants of Tables VIII and IX).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselinePlacement {
    /// The baseline's own similar-together partitioning.
    Homogeneous,
    /// REPOSE-style heterogeneous round-robin over the similarity order.
    Heterogeneous,
}
