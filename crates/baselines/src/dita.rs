use crate::{merge_top_k, refine_top_k, BaselineHit, BaselineOutcome, BaselinePlacement};
use repose_cluster::{Cluster, ClusterConfig, DistDataset, JobStats};
use repose_distance::{bound_exceeds, Measure, MeasureParams};
use repose_model::{Dataset, Mbr, Point, TrajStore};
use repose_zorder::geohash_cell;
use std::time::{Duration, Instant};

/// DITA configuration (Section VII-A: `NL = 32`, pivot size 4, neighbor
/// distance pivot selection).
#[derive(Debug, Clone, Copy)]
pub struct DitaConfig {
    /// Simulated cluster topology.
    pub cluster: ClusterConfig,
    /// Number of partitions.
    pub num_partitions: usize,
    /// Maximum pivot points per trajectory (`NL`).
    pub nl: usize,
    /// Candidate budget factor: threshold halving stops when the candidate
    /// count drops below `C·k`.
    pub c_factor: usize,
    /// Homogeneous (paper DITA) or heterogeneous (Heter-DITA, Table VIII).
    pub placement: BaselinePlacement,
}

impl DitaConfig {
    /// The paper's settings on the default cluster.
    pub fn paper_default() -> Self {
        DitaConfig {
            cluster: ClusterConfig::paper_default(),
            num_partitions: ClusterConfig::paper_default().total_cores(),
            nl: 32,
            c_factor: 5,
            placement: BaselinePlacement::Homogeneous,
        }
    }
}

/// One DITA partition: the trajectory arena plus, per slot, the pivot
/// points (first, last, and high-curvature interior points — the
/// neighbor-distance strategy).
#[derive(Debug)]
struct DitaPartition {
    store: TrajStore,
    pivots: Vec<Vec<Point>>,
}

/// The DITA baseline: pivot-based distributed trajectory search.
///
/// Top-k works the way the paper describes DITA's adaptation: estimate a
/// range threshold, halve it until the candidate count falls below `C·k`,
/// refine candidates exactly, then run a final range query at the k-th
/// exact distance (Section VII-A, baseline 2). No Hausdorff support.
#[derive(Debug)]
pub struct Dita {
    cluster: Cluster,
    config: DitaConfig,
    data: DistDataset<DitaPartition>,
    region_diag: f64,
    measure: Measure,
    params: MeasureParams,
    index_time: Duration,
    index_bytes: usize,
}

/// Pivot selection: first + last + interior points with the largest
/// neighbor distance `d(p_{i-1}, p_i) + d(p_i, p_{i+1})`.
fn select_pivots(points: &[Point], nl: usize) -> Vec<Point> {
    let n = points.len();
    if n <= 2 || nl <= 2 {
        let mut p = vec![points[0]];
        if n > 1 {
            p.push(points[n - 1]);
        }
        return p;
    }
    let mut scored: Vec<(f64, usize)> = (1..n - 1)
        .map(|i| {
            (
                points[i - 1].dist(&points[i]) + points[i].dist(&points[i + 1]),
                i,
            )
        })
        .collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut idx: Vec<usize> = scored.iter().take(nl - 2).map(|s| s.1).collect();
    idx.sort_unstable();
    let mut pivots = Vec::with_capacity(idx.len() + 2);
    pivots.push(points[0]);
    pivots.extend(idx.into_iter().map(|i| points[i]));
    pivots.push(points[n - 1]);
    pivots
}

/// Lower bound on `D(query, t)` from endpoints and pivots. Valid for
/// Frechet and DTW: both must align `(q_1, p_1)` and `(q_m, p_n)`, and both
/// are bounded below by `max_j min_i d(q_i, p_j)` over any subset of `t`'s
/// points (every reference point is matched by some query point).
fn pivot_lb(query: &[Point], points: &[Point], pivots: &[Point]) -> f64 {
    let q1 = query[0];
    let qm = *query.last().expect("non-empty query");
    let p1 = points[0];
    let pn = *points.last().expect("non-empty trajectory");
    let mut lb = q1.dist(&p1).max(qm.dist(&pn));
    for pv in pivots {
        let mut best = f64::INFINITY;
        for q in query {
            let d = q.dist(pv);
            if d < best {
                best = d;
            }
        }
        if best > lb {
            lb = best;
        }
    }
    lb
}

/// Measure-aware candidate lower bound: the pivot bound where it is valid
/// (Frechet and DTW — see [`pivot_lb`]), strengthened by the measure's own
/// `O(m+n)` prefilter bound. For LCSS and EDR only the prefilter bound is
/// sound: their distances live on the `[0, 1]` / edit-count scales, which
/// the Euclidean pivot bound does not lower-bound.
fn measure_lb(
    measure: Measure,
    params: &MeasureParams,
    query: &[Point],
    points: &[Point],
    pivots: &[Point],
) -> f64 {
    let base = params.lower_bound(measure, query, points);
    match measure {
        Measure::Frechet | Measure::Dtw => base.max(pivot_lb(query, points, pivots)),
        _ => base,
    }
}

impl Dita {
    /// Whether DITA supports `measure` (no Hausdorff, no ERP — Section I).
    pub fn supports(measure: Measure) -> bool {
        matches!(
            measure,
            Measure::Frechet | Measure::Dtw | Measure::Edr | Measure::Lcss
        )
    }

    /// Builds the pivot representation and partitions trajectories by
    /// (first point, last point) order — DITA "places trajectories with
    /// close first and last points in the same partition".
    pub fn build(
        dataset: &Dataset,
        config: DitaConfig,
        measure: Measure,
        params: MeasureParams,
    ) -> Self {
        assert!(
            Self::supports(measure),
            "DITA does not support {measure} (Section I)"
        );
        let t0 = Instant::now();
        let region = dataset
            .enclosing_square()
            .unwrap_or_else(|| Mbr::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)));
        let region_diag = region.min.dist(&region.max);

        // Order by (first-point cell, last-point cell).
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        let keys: Vec<(u64, u64)> = dataset
            .trajectories()
            .iter()
            .map(|t| {
                (
                    geohash_cell(t.first().expect("non-empty"), &region, 6),
                    geohash_cell(t.last().expect("non-empty"), &region, 6),
                )
            })
            .collect();
        order.sort_by_key(|&i| (keys[i], dataset.trajectories()[i].id));

        let n = config.num_partitions;
        let mut parts: Vec<Vec<usize>> = (0..n).map(|_| Vec::new()).collect();
        match config.placement {
            BaselinePlacement::Homogeneous => {
                let chunk = order.len().div_ceil(n).max(1);
                for (i, ti) in order.into_iter().enumerate() {
                    parts[(i / chunk).min(n - 1)].push(ti);
                }
            }
            BaselinePlacement::Heterogeneous => {
                for (i, ti) in order.into_iter().enumerate() {
                    parts[i % n].push(ti);
                }
            }
        }

        let cluster = Cluster::new(config.cluster);
        let raw = DistDataset::from_partitions(parts.into_iter().map(|p| vec![p]).collect());
        let all = dataset.trajectories();
        let (built, times, wall) = cluster.run_partitions(&raw, |_, chunk| {
            let mut store = TrajStore::new();
            let mut pivots = Vec::with_capacity(chunk[0].len());
            for &ti in &chunk[0] {
                let t = &all[ti];
                store.push(t.id, &t.points);
                pivots.push(select_pivots(&t.points, config.nl));
            }
            DitaPartition { store, pivots }
        });
        let build_stats = JobStats::simulate(
            times,
            (0..n).collect(),
            config.cluster.workers,
            config.cluster.cores_per_worker,
            wall,
        );
        let index_time = t0.elapsed() - wall + build_stats.makespan;
        let data = DistDataset::from_partitions(built.into_iter().map(|p| vec![p]).collect());
        let index_bytes = data
            .partitions()
            .iter()
            .map(|p| {
                p[0].pivots
                    .iter()
                    .map(|pv| pv.capacity() * std::mem::size_of::<Point>() + 16)
                    .sum::<usize>()
            })
            .sum();
        Dita {
            cluster,
            config,
            data,
            region_diag,
            measure,
            params,
            index_time,
            index_bytes,
        }
    }

    /// Counts candidates under range threshold `r` against the cached
    /// per-trajectory bounds (a cheap distributed pass — the bounds were
    /// computed once up front).
    fn count_candidates(&self, lbs: &[Vec<f64>], r: f64) -> (usize, Vec<Duration>, Duration) {
        let (counts, times, wall) = self.cluster.run_partitions(&self.data, |pi, _chunk| {
            lbs[pi].iter().filter(|&&lb| lb <= r).count()
        });
        (counts.into_iter().sum(), times, wall)
    }

    /// Distributed top-k by iterative threshold halving + final range
    /// refinement.
    pub fn query(&self, query: &[Point], k: usize) -> BaselineOutcome {
        let measure = self.measure;
        let params = self.params;
        let n_parts = self.data.num_partitions();
        let empty_job = |wall| {
            JobStats::simulate(
                vec![Duration::ZERO; n_parts],
                (0..n_parts).collect(),
                self.config.cluster.workers,
                self.config.cluster.cores_per_worker,
                wall,
            )
        };
        if k == 0 || query.is_empty() || self.data.total_items() == 0 {
            return BaselineOutcome { hits: Vec::new(), job: empty_job(Duration::ZERO) };
        }

        // Phase 0: one timed pass computing every candidate's lower bound;
        // the halving loop and phases 2/3 all reuse these values.
        let mut acc_times = vec![Duration::ZERO; n_parts];
        let mut acc_wall = Duration::ZERO;
        let (lbs, times, wall) = self.cluster.run_partitions(&self.data, |_, chunk| {
            let part = &chunk[0];
            (0..part.store.len())
                .map(|li| {
                    measure_lb(measure, &params, query, part.store.points(li), &part.pivots[li])
                })
                .collect::<Vec<f64>>()
        });
        for (a, t) in acc_times.iter_mut().zip(&times) {
            *a += *t;
        }
        acc_wall += wall;

        // Phase 1: halve the range threshold until < C·k candidates
        // survive the lower-bound test (accumulating the cost of every
        // counting pass into the query's schedule). The halving count is
        // capped: quantized measures (LCSS/EDR) can have many candidates
        // with a lower bound of exactly zero, which no finite threshold
        // excludes — correctness never depends on r, only the candidate
        // budget does.
        let budget = (self.c_factor_k(k)).max(k);
        let mut r = self.region_diag;
        for _ in 0..64 {
            let (count, times, wall) = self.count_candidates(&lbs, r * 0.5);
            for (a, t) in acc_times.iter_mut().zip(&times) {
                *a += *t;
            }
            acc_wall += wall;
            if count < budget {
                break;
            }
            r *= 0.5;
        }

        // Phase 2: refine the surviving candidates exactly under a running
        // local top-k threshold (their lower bound orders the scan, the
        // early-abandoning kernel refutes the losers); the union's k-th
        // distance is a correct (conservative) range for the final pass —
        // each partition's k best are exact, and the global k-th only
        // depends on those.
        let (locals, times, wall) = self.cluster.run_partitions(&self.data, |pi, chunk| {
            let part = &chunk[0];
            let cands: Vec<(f64, u64, &[Point])> = part
                .store
                .iter()
                .zip(&lbs[pi])
                .filter_map(|((id, pts), &lb)| {
                    // fp-safety-margined gate: an ulp-overshooting bound
                    // must never exclude a candidate whose exact distance
                    // is within the range (see `bound_exceeds`)
                    (!bound_exceeds(lb, r)).then_some((lb, id, pts))
                })
                .collect();
            refine_top_k(cands, query, measure, &params, k, f64::INFINITY)
        });
        for (a, t) in acc_times.iter_mut().zip(&times) {
            *a += *t;
        }
        acc_wall += wall;
        let mut phase2: Vec<BaselineHit> = locals.into_iter().flatten().collect();
        phase2.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        let dk = if phase2.len() >= k {
            phase2[k - 1].dist
        } else {
            f64::INFINITY // too few candidates: fall back to a full range
        };

        // Phase 3: final range query at dk over all partitions (correct
        // top-k: every true hit has exact distance <= dk, hence lb <= dk,
        // and phase 2 guarantees at least k candidates at or below dk —
        // so capping the refinement at dk drops no answer).
        let (locals, times, wall) = self.cluster.run_partitions(&self.data, |pi, chunk| {
            let part = &chunk[0];
            let cands: Vec<(f64, u64, &[Point])> = part
                .store
                .iter()
                .zip(&lbs[pi])
                .filter_map(|((id, pts), &lb)| {
                    // same margin as above: every true hit has exact
                    // distance <= dk, so its (possibly ulp-overshooting)
                    // bound must not disqualify it here
                    (!bound_exceeds(lb, dk)).then_some((lb, id, pts))
                })
                .collect();
            refine_top_k(cands, query, measure, &params, k, dk)
        });
        for (a, t) in acc_times.iter_mut().zip(&times) {
            *a += *t;
        }
        acc_wall += wall;

        let job = JobStats::simulate(
            acc_times,
            (0..n_parts).collect(),
            self.config.cluster.workers,
            self.config.cluster.cores_per_worker,
            acc_wall,
        );
        let hits = merge_top_k(locals.into_iter().flatten().collect(), k);
        BaselineOutcome { hits, job }
    }

    fn c_factor_k(&self, k: usize) -> usize {
        self.config.c_factor * k
    }

    /// Index size in bytes (pivot representation).
    pub fn index_bytes(&self) -> usize {
        self.index_bytes
    }

    /// Simulated index construction time.
    pub fn index_time(&self) -> Duration {
        self.index_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repose_model::Trajectory;

    fn dataset() -> Dataset {
        Dataset::from_trajectories(
            (0..60u64)
                .map(|i| {
                    let y = (i % 12) as f64;
                    let x0 = (i / 12) as f64 * 3.0;
                    Trajectory::new(
                        i,
                        (0..10).map(|j| Point::new(x0 + j as f64 * 0.3, y)).collect(),
                    )
                })
                .collect(),
        )
    }

    fn small_cfg() -> DitaConfig {
        DitaConfig {
            cluster: ClusterConfig { workers: 2, cores_per_worker: 2, timing_repeats: 1 },
            num_partitions: 4,
            nl: 8,
            c_factor: 5,
            placement: BaselinePlacement::Homogeneous,
        }
    }

    fn brute(d: &Dataset, q: &[Point], k: usize, m: Measure) -> Vec<u64> {
        let p = MeasureParams::default();
        let mut v: Vec<(f64, u64)> = d
            .trajectories()
            .iter()
            .map(|t| (p.distance(m, q, &t.points), t.id))
            .collect();
        v.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        v.truncate(k);
        v.into_iter().map(|e| e.1).collect()
    }

    #[test]
    fn matches_brute_force_frechet_and_dtw() {
        let d = dataset();
        let q: Vec<Point> = (0..10).map(|j| Point::new(j as f64 * 0.3, 5.4)).collect();
        for m in [Measure::Frechet, Measure::Dtw] {
            let dita = Dita::build(&d, small_cfg(), m, MeasureParams::default());
            for k in [1, 3, 10] {
                let got: Vec<u64> = dita.query(&q, k).hits.iter().map(|h| h.id).collect();
                assert_eq!(got, brute(&d, &q, k, m), "{m} k={k}");
            }
        }
    }

    /// LCSS/EDR distances are not on the Euclidean scale, so the pivot
    /// bound must not prune for them — the distance vector has to match
    /// brute force exactly (ids tie freely under quantized measures).
    #[test]
    fn matches_brute_force_lcss_and_edr() {
        let params = MeasureParams::with_eps(0.2);
        // A near-perfect LCSS match with a far outlier pivot (huge
        // Euclidean bound, tiny LCSS distance) among near-miss decoys —
        // the scenario a Euclidean bound would wrongly refute.
        let mut trajs: Vec<Trajectory> = vec![Trajectory::new(
            0,
            (0..9)
                .map(|j| Point::new(j as f64, 0.05))
                .chain([Point::new(60.0, 60.0)])
                .collect(),
        )];
        for i in 1..40u64 {
            let y = 3.0 + (i % 7) as f64;
            trajs.push(Trajectory::new(
                i,
                (0..10).map(|j| Point::new(j as f64, y)).collect(),
            ));
        }
        let d = Dataset::from_trajectories(trajs);
        let q: Vec<Point> = (0..10).map(|j| Point::new(j as f64, 0.0)).collect();
        for m in [Measure::Lcss, Measure::Edr] {
            let dita = Dita::build(&d, small_cfg(), m, params);
            for k in [1, 3, 7] {
                let got = dita.query(&q, k);
                let mut expect: Vec<(f64, u64)> = d
                    .trajectories()
                    .iter()
                    .map(|t| (params.distance(m, &q, &t.points), t.id))
                    .collect();
                expect.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                assert_eq!(got.hits.len(), k, "{m} k={k}");
                assert_eq!(got.hits[0].id, 0, "{m} k={k}: outlier-pivot match lost");
                for (h, e) in got.hits.iter().zip(&expect) {
                    assert_eq!(
                        h.dist.to_bits(),
                        e.0.to_bits(),
                        "{m} k={k}: distance vector differs from brute force"
                    );
                }
            }
        }
    }

    #[test]
    fn heterogeneous_placement_matches_too() {
        let d = dataset();
        let q: Vec<Point> = (0..10).map(|j| Point::new(j as f64 * 0.3, 2.1)).collect();
        let mut cfg = small_cfg();
        cfg.placement = BaselinePlacement::Heterogeneous;
        let dita = Dita::build(&d, cfg, Measure::Frechet, MeasureParams::default());
        let got: Vec<u64> = dita.query(&q, 5).hits.iter().map(|h| h.id).collect();
        assert_eq!(got, brute(&d, &q, 5, Measure::Frechet));
    }

    #[test]
    fn pivot_selection_keeps_endpoints() {
        let pts: Vec<Point> = (0..20).map(|i| Point::new(i as f64, (i % 3) as f64)).collect();
        let p = select_pivots(&pts, 6);
        assert_eq!(p.len(), 6);
        assert_eq!(p[0], pts[0]);
        assert_eq!(*p.last().unwrap(), *pts.last().unwrap());
    }

    #[test]
    fn pivot_lb_is_a_lower_bound() {
        let d = dataset();
        let q: Vec<Point> = (0..10).map(|j| Point::new(j as f64 * 0.3, 5.4)).collect();
        let params = MeasureParams::default();
        for t in d.trajectories().iter().take(20) {
            let pivots = select_pivots(&t.points, 8);
            let lb = pivot_lb(&q, &t.points, &pivots);
            for m in [Measure::Frechet, Measure::Dtw] {
                let exact = params.distance(m, &q, &t.points);
                assert!(lb <= exact + 1e-9, "{m}: lb {lb} > exact {exact}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "DITA does not support")]
    fn rejects_hausdorff() {
        Dita::build(&dataset(), small_cfg(), Measure::Hausdorff, MeasureParams::default());
    }

    #[test]
    fn supports_flags() {
        assert!(Dita::supports(Measure::Frechet));
        assert!(Dita::supports(Measure::Dtw));
        assert!(!Dita::supports(Measure::Hausdorff));
        assert!(!Dita::supports(Measure::Erp));
    }
}
