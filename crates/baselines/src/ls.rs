use crate::{merge_top_k, BaselineHit, BaselineOutcome};
use repose_cluster::{Cluster, ClusterConfig, DistDataset, JobStats, Partitioner, RoundRobinPartitioner};
use repose_distance::{DistScratch, Measure, MeasureParams};
use repose_model::{Dataset, Point, TrajStore, Trajectory};

/// Brute-force distributed linear scan: computes the exact distance between
/// the query and every trajectory in every partition, then merges
/// (Section VII-A, baseline 3).
///
/// Each partition's data is one flat [`TrajStore`] arena, so the scan is a
/// linear walk over contiguous points with a per-thread reusable kernel
/// scratch — the yardstick pays the same memory discipline as the index.
#[derive(Debug)]
pub struct LinearScan {
    cluster: Cluster,
    data: DistDataset<TrajStore>,
    measure: Measure,
    params: MeasureParams,
    workers: usize,
    cores: usize,
}

/// Deals trajectories to partitions with `partitioner`, freezing each
/// partition into its own arena.
fn partition_stores<P: Partitioner<Trajectory>>(
    dataset: &Dataset,
    partitioner: &P,
) -> Vec<TrajStore> {
    let n = partitioner.num_partitions();
    let mut stores: Vec<TrajStore> = (0..n).map(|_| TrajStore::new()).collect();
    for (i, t) in dataset.trajectories().iter().enumerate() {
        let p = partitioner.partition(i, t);
        assert!(p < n, "partitioner returned {p} >= {n}");
        stores[p].push(t.id, &t.points);
    }
    stores
}

impl LinearScan {
    /// Distributes `dataset` round-robin over `num_partitions`.
    pub fn build(
        dataset: &Dataset,
        cluster_cfg: ClusterConfig,
        num_partitions: usize,
        measure: Measure,
        params: MeasureParams,
    ) -> Self {
        LinearScan::build_with_partitioner(
            dataset,
            cluster_cfg,
            &RoundRobinPartitioner::new(num_partitions),
            measure,
            params,
        )
    }

    /// Like [`LinearScan::build`] but with an arbitrary partitioner (used
    /// to reproduce LS's skew sensitivity in Fig. 9).
    pub fn build_with_partitioner<P: Partitioner<Trajectory>>(
        dataset: &Dataset,
        cluster_cfg: ClusterConfig,
        partitioner: &P,
        measure: Measure,
        params: MeasureParams,
    ) -> Self {
        let cluster = Cluster::new(cluster_cfg);
        let data = DistDataset::from_partitions(
            partition_stores(dataset, partitioner)
                .into_iter()
                .map(|s| vec![s])
                .collect(),
        );
        LinearScan {
            cluster,
            data,
            measure,
            params,
            workers: cluster_cfg.workers,
            cores: cluster_cfg.cores_per_worker,
        }
    }

    /// Distributed top-k by exhaustive scan.
    pub fn query(&self, query: &[Point], k: usize) -> BaselineOutcome {
        let measure = self.measure;
        let params = self.params;
        let (locals, times, wall) = self.cluster.run_partitions(&self.data, |_, part| {
            let store = &part[0];
            let mut hits: Vec<BaselineHit> = DistScratch::with_thread(|scratch| {
                store
                    .iter()
                    .map(|(id, pts)| BaselineHit {
                        id,
                        dist: params.distance_in(measure, query, pts, scratch),
                    })
                    .collect()
            });
            hits.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
            hits.truncate(k);
            hits
        });
        let job = JobStats::simulate(
            times,
            (0..self.data.num_partitions()).collect(),
            self.workers,
            self.cores,
            wall,
        );
        let hits = merge_top_k(locals.into_iter().flatten().collect(), k);
        BaselineOutcome { hits, job }
    }

    /// LS keeps no index (Table IV reports "/" for its IS and IT).
    pub fn index_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        Dataset::from_trajectories(
            (0..50u64)
                .map(|i| {
                    let y = i as f64;
                    Trajectory::new(i, (0..10).map(|j| Point::new(j as f64, y)).collect())
                })
                .collect(),
        )
    }

    #[test]
    fn finds_exact_top_k() {
        let d = dataset();
        let ls = LinearScan::build(
            &d,
            ClusterConfig { workers: 2, cores_per_worker: 2, timing_repeats: 1 },
            4,
            Measure::Hausdorff,
            MeasureParams::default(),
        );
        let q: Vec<Point> = (0..10).map(|j| Point::new(j as f64, 10.2)).collect();
        let out = ls.query(&q, 3);
        let ids: Vec<u64> = out.hits.iter().map(|h| h.id).collect();
        assert_eq!(ids, vec![10, 11, 9]); // 10 at 0.2, 11 at 0.8, 9 at 1.2
        assert_eq!(out.job.partition_times.len(), 4);
    }

    #[test]
    fn k_zero_returns_empty() {
        let d = dataset();
        let ls = LinearScan::build(
            &d,
            ClusterConfig { workers: 2, cores_per_worker: 1, timing_repeats: 1 },
            2,
            Measure::Dtw,
            MeasureParams::default(),
        );
        let q = vec![Point::new(0.0, 0.0)];
        assert!(ls.query(&q, 0).hits.is_empty());
    }

    #[test]
    fn no_index_cost() {
        let d = dataset();
        let ls = LinearScan::build(
            &d,
            ClusterConfig::paper_default(),
            8,
            Measure::Frechet,
            MeasureParams::default(),
        );
        assert_eq!(ls.index_bytes(), 0);
    }
}
