use crate::{merge_top_k, refine_top_k, BaselineOutcome, BaselinePlacement};
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;
use repose_cluster::{Cluster, ClusterConfig, DistDataset, JobStats};
use repose_distance::{Measure, MeasureParams};
use repose_model::{Dataset, Mbr, Point, Segment, TrajStore, Trajectory};
use repose_rtree::RTree;
use repose_zorder::geohash_cell;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// DFT configuration (Section VII-A: `C = 5`, the DFT-RB+DI variant).
#[derive(Debug, Clone, Copy)]
pub struct DftConfig {
    /// Simulated cluster topology.
    pub cluster: ClusterConfig,
    /// Number of partitions.
    pub num_partitions: usize,
    /// Threshold-sampling factor `C`: the query samples `C·k` trajectories.
    pub sample_factor: usize,
    /// Homogeneous (paper DFT) or heterogeneous (Heter-DFT, Table IX).
    pub placement: BaselinePlacement,
    /// RNG seed for threshold sampling.
    pub seed: u64,
}

impl DftConfig {
    /// The paper's settings on the default cluster.
    pub fn paper_default() -> Self {
        DftConfig {
            cluster: ClusterConfig::paper_default(),
            num_partitions: ClusterConfig::paper_default().total_cores(),
            sample_factor: 5,
            placement: BaselinePlacement::Homogeneous,
            seed: 0xDF7,
        }
    }
}

/// One DFT partition: an R-tree over local segment MBRs plus *copies of
/// every trajectory owning a local segment* — the regrouping storage that
/// gives DFT its large index (Table IV discussion). The copies live in a
/// flat [`TrajStore`] arena keyed by local slot.
#[derive(Debug)]
struct DftPartition {
    rtree: RTree<u32>,
    store: TrajStore,
}

/// The DFT baseline: distributed segment-granularity trajectory search.
#[derive(Debug)]
pub struct Dft {
    cluster: Cluster,
    config: DftConfig,
    data: DistDataset<DftPartition>,
    /// Master copy used for threshold sampling (flat arena).
    master: TrajStore,
    measure: Measure,
    params: MeasureParams,
    index_time: Duration,
    index_bytes: usize,
}

impl Dft {
    /// Decomposes `dataset` into segments, partitions them by centroid
    /// order, and builds the per-partition R-trees.
    pub fn build(
        dataset: &Dataset,
        config: DftConfig,
        measure: Measure,
        params: MeasureParams,
    ) -> Self {
        assert!(
            matches!(measure, Measure::Hausdorff | Measure::Frechet | Measure::Dtw),
            "DFT supports Hausdorff, Frechet and DTW only (Section I)"
        );
        let t0 = Instant::now();
        let region = dataset
            .enclosing_square()
            .unwrap_or_else(|| Mbr::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)));
        let n = config.num_partitions;
        let mut parts: Vec<Vec<Segment>> = (0..n).map(|_| Vec::new()).collect();
        match config.placement {
            BaselinePlacement::Homogeneous => {
                // DFT's own strategy: "segments with close centroids in the
                // same partition" — z-order sort, contiguous chunks.
                let mut segments: Vec<Segment> = dataset
                    .trajectories()
                    .iter()
                    .flat_map(Trajectory::segments)
                    .collect();
                segments.sort_by_key(|s| geohash_cell(s.centroid(), &region, 10));
                let chunk = segments.len().div_ceil(n).max(1);
                for (i, s) in segments.into_iter().enumerate() {
                    parts[(i / chunk).min(n - 1)].push(s);
                }
            }
            BaselinePlacement::Heterogeneous => {
                // REPOSE's idea grafted onto DFT: spread *similar
                // trajectories* across partitions, round-robin over the
                // centroid-sorted trajectory order. Each trajectory's own
                // segments stay together (scattering them would duplicate
                // the trajectory into every partition for regrouping).
                let mut order: Vec<usize> = (0..dataset.len()).collect();
                let keys: Vec<u64> = dataset
                    .trajectories()
                    .iter()
                    .map(|t| {
                        let m = t.mbr().expect("non-empty trajectory");
                        geohash_cell(m.center(), &region, 10)
                    })
                    .collect();
                order.sort_by_key(|&i| (keys[i], dataset.trajectories()[i].id));
                for (i, ti) in order.into_iter().enumerate() {
                    parts[i % n].extend(dataset.trajectories()[ti].segments());
                }
            }
        }

        let id_index = dataset.id_index();
        let cluster = Cluster::new(config.cluster);
        let raw = DistDataset::from_partitions(parts.into_iter().map(|p| vec![p]).collect());
        let all = dataset.trajectories();
        let (built, times, wall) = cluster.run_partitions(&raw, |_, chunk| {
            let segs = &chunk[0];
            // Local trajectory copies for regrouping, packed into one
            // arena so refinement scans contiguous memory.
            let mut local_of: HashMap<u64, u32> = HashMap::new();
            let mut store = TrajStore::new();
            let mut entries = Vec::with_capacity(segs.len());
            for s in segs {
                let li = *local_of.entry(s.traj_id).or_insert_with(|| {
                    let t = &all[id_index[&s.traj_id]];
                    store.push(t.id, &t.points) as u32
                });
                entries.push((s.mbr(), li));
            }
            let rtree = RTree::bulk_load(entries);
            DftPartition { rtree, store }
        });
        let build_stats = JobStats::simulate(
            times,
            (0..n).collect(),
            config.cluster.workers,
            config.cluster.cores_per_worker,
            wall,
        );
        let index_time = t0.elapsed() - wall + build_stats.makespan;
        let data = DistDataset::from_partitions(built.into_iter().map(|p| vec![p]).collect());
        let index_bytes = data
            .partitions()
            .iter()
            .map(|p| p[0].rtree.mem_bytes() + p[0].store.mem_bytes())
            .sum();
        Dft {
            cluster,
            config,
            data,
            master: TrajStore::from_trajectories(dataset.trajectories()),
            measure,
            params,
            index_time,
            index_bytes,
        }
    }

    /// Distributed top-k: sample-based threshold, segment-level candidate
    /// generation, regroup-and-refine, master merge.
    pub fn query(&self, query: &[Point], k: usize) -> BaselineOutcome {
        let measure = self.measure;
        let params = self.params;
        if k == 0 || query.is_empty() || self.master.is_empty() {
            return BaselineOutcome {
                hits: Vec::new(),
                job: JobStats::simulate(
                    vec![Duration::ZERO; self.data.num_partitions()],
                    (0..self.data.num_partitions()).collect(),
                    self.config.cluster.workers,
                    self.config.cluster.cores_per_worker,
                    Duration::ZERO,
                ),
            };
        }
        // Phase 1: estimate the pruning threshold from C·k random
        // trajectories ("finds C·k trajectories at random from the dataset
        // and uses the k-th smallest distance as the threshold"). Only the
        // k-th smallest sample distance matters, so samples that cannot
        // beat the running k-th are abandoned early.
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ (query.len() as u64) << 32 ^ k as u64);
        let n_samples = (self.config.sample_factor * k).min(self.master.len());
        let sampled: Vec<(f64, u64, &[Point])> = sample(&mut rng, self.master.len(), n_samples)
            .into_iter()
            .map(|i| {
                let pts = self.master.points(i);
                (
                    params.lower_bound(measure, query, pts),
                    self.master.id(i),
                    pts,
                )
            })
            .collect();
        let sample_best = refine_top_k(sampled, query, measure, &params, k, f64::INFINITY);
        let dk = if sample_best.len() >= k {
            sample_best[k - 1].dist
        } else {
            f64::INFINITY
        };

        // Phase 2: per-partition candidate generation + refinement.
        let qmbr = Mbr::from_points(query).expect("non-empty query");
        let (locals, times, wall) = self.cluster.run_partitions(&self.data, |_, chunk| {
            let part = &chunk[0];
            // Candidates: trajectories owning a segment whose MBR is within
            // dk of the query MBR.
            let mut cand = vec![false; part.store.len()];
            part.rtree.visit(
                |m| m.min_dist_mbr(&qmbr) <= dk,
                |_, &li| cand[li as usize] = true,
            );
            // Regroup + refine under a running local top-k threshold,
            // capped at dk: every true global hit has distance <= dk and a
            // qualifying segment in some partition, so nothing is lost.
            let cands: Vec<(f64, u64, &[Point])> = cand
                .iter()
                .enumerate()
                .filter(|(_, &c)| c)
                .map(|(li, _)| {
                    let pts = part.store.points(li);
                    (
                        params.lower_bound(measure, query, pts),
                        part.store.id(li),
                        pts,
                    )
                })
                .collect();
            refine_top_k(cands, query, measure, &params, k, dk)
        });
        let job = JobStats::simulate(
            times,
            (0..self.data.num_partitions()).collect(),
            self.config.cluster.workers,
            self.config.cluster.cores_per_worker,
            wall,
        );
        let hits = merge_top_k(locals.into_iter().flatten().collect(), k);
        BaselineOutcome { hits, job }
    }

    /// Index size in bytes (segment R-trees + regrouping copies).
    pub fn index_bytes(&self) -> usize {
        self.index_bytes
    }

    /// Simulated index construction time.
    pub fn index_time(&self) -> Duration {
        self.index_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        Dataset::from_trajectories(
            (0..60u64)
                .map(|i| {
                    let y = (i % 12) as f64;
                    let x0 = (i / 12) as f64 * 3.0;
                    Trajectory::new(
                        i,
                        (0..10).map(|j| Point::new(x0 + j as f64 * 0.3, y)).collect(),
                    )
                })
                .collect(),
        )
    }

    fn small_cfg() -> DftConfig {
        DftConfig {
            cluster: ClusterConfig { workers: 2, cores_per_worker: 2, timing_repeats: 1 },
            num_partitions: 4,
            sample_factor: 5,
            placement: BaselinePlacement::Homogeneous,
            seed: 7,
        }
    }

    fn brute(d: &Dataset, q: &[Point], k: usize, m: Measure) -> Vec<u64> {
        let p = MeasureParams::default();
        let mut v: Vec<(f64, u64)> = d
            .trajectories()
            .iter()
            .map(|t| (p.distance(m, q, &t.points), t.id))
            .collect();
        v.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        v.truncate(k);
        v.into_iter().map(|e| e.1).collect()
    }

    #[test]
    fn matches_brute_force() {
        let d = dataset();
        let q: Vec<Point> = (0..10).map(|j| Point::new(j as f64 * 0.3, 5.4)).collect();
        for m in [Measure::Hausdorff, Measure::Frechet, Measure::Dtw] {
            let dft = Dft::build(&d, small_cfg(), m, MeasureParams::default());
            for k in [1, 3, 10] {
                let got: Vec<u64> = dft.query(&q, k).hits.iter().map(|h| h.id).collect();
                assert_eq!(got, brute(&d, &q, k, m), "{m} k={k}");
            }
        }
    }

    #[test]
    fn heterogeneous_placement_matches_too() {
        let d = dataset();
        let q: Vec<Point> = (0..10).map(|j| Point::new(j as f64 * 0.3, 2.1)).collect();
        let mut cfg = small_cfg();
        cfg.placement = BaselinePlacement::Heterogeneous;
        let dft = Dft::build(&d, cfg, Measure::Hausdorff, MeasureParams::default());
        let got: Vec<u64> = dft.query(&q, 5).hits.iter().map(|h| h.id).collect();
        assert_eq!(got, brute(&d, &q, 5, Measure::Hausdorff));
    }

    #[test]
    fn index_duplicates_trajectories() {
        // Segments of one trajectory scatter across partitions, so the
        // total stored trajectory bytes exceed the dataset's own footprint.
        let d = dataset();
        let dft = Dft::build(&d, small_cfg(), Measure::Hausdorff, MeasureParams::default());
        let raw: usize = d.trajectories().iter().map(Trajectory::mem_bytes).sum();
        assert!(
            dft.index_bytes() > raw,
            "index {} should exceed raw data {raw}",
            dft.index_bytes()
        );
    }

    #[test]
    #[should_panic(expected = "DFT supports")]
    fn rejects_unsupported_measure() {
        Dft::build(&dataset(), small_cfg(), Measure::Lcss, MeasureParams::default());
    }

    #[test]
    fn empty_query_and_k_zero() {
        let d = dataset();
        let dft = Dft::build(&d, small_cfg(), Measure::Hausdorff, MeasureParams::default());
        assert!(dft.query(&[], 5).hits.is_empty());
        let q = vec![Point::new(0.0, 0.0)];
        assert!(dft.query(&q, 0).hits.is_empty());
    }
}
