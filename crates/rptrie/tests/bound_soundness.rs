//! Property tests of the paper's lemmas: every lower bound computed during
//! a trie descent must actually lower-bound the exact distance to every
//! trajectory stored below that node (Lemmas 1–4), and internal bounds
//! must be monotone along root-to-leaf paths (the best-first invariant).

use proptest::prelude::*;
use repose_distance::{Measure, MeasureParams};
use repose_model::{Mbr, Point, TrajStore, Trajectory};
use repose_rptrie::{RpTrie, RpTrieConfig};
use repose_zorder::Grid;

fn pts(v: &[(f64, f64)]) -> Vec<Point> {
    v.iter().map(|&(x, y)| Point::new(x, y)).collect()
}

fn region() -> Mbr {
    Mbr::new(Point::new(0.0, 0.0), Point::new(32.0, 32.0))
}

/// Exhaustively checks soundness through the public API: run top-k with
/// k = N (so nothing may be pruned away incorrectly) and verify the result
/// set is complete and exactly ranked. If any bound over-estimated, some
/// trajectory would be missing or mis-ranked.
fn check_complete_ranking(
    trajs: &[Trajectory],
    query: &[Point],
    measure: Measure,
    params: MeasureParams,
    level: u8,
) -> Result<(), TestCaseError> {
    let grid = Grid::new(region(), level);
    let store = TrajStore::from_trajectories(trajs);
    let trie = RpTrie::build(
        &store,
        grid,
        RpTrieConfig::for_measure(measure).with_params(params).with_np(2),
    );
    let r = trie.top_k(&store, query, trajs.len());
    prop_assert_eq!(r.hits.len(), trajs.len(), "{} lost trajectories", measure);
    let mut expect: Vec<(f64, u64)> = trajs
        .iter()
        .map(|t| (params.distance(measure, query, &t.points), t.id))
        .collect();
    expect.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    for (h, e) in r.hits.iter().zip(&expect) {
        prop_assert!(
            (h.dist - e.0).abs() < 1e-9,
            "{}: rank distance mismatch {} vs {}",
            measure,
            h.dist,
            e.0
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn no_bound_ever_loses_a_trajectory(
        raw in proptest::collection::vec(
            proptest::collection::vec((0.0f64..32.0, 0.0f64..32.0), 1..10),
            1..25,
        ),
        query in proptest::collection::vec((0.0f64..32.0, 0.0f64..32.0), 1..8),
        level in 2u8..6,
        measure_idx in 0usize..6,
    ) {
        let trajs: Vec<Trajectory> = raw
            .into_iter()
            .enumerate()
            .map(|(i, p)| Trajectory::new(i as u64, pts(&p)))
            .collect();
        let query = pts(&query);
        let measure = Measure::ALL[measure_idx];
        let params = MeasureParams::with_eps(1.5);
        check_complete_ranking(&trajs, &query, measure, params, level)?;
    }

    /// Degenerate geometries: collinear points, repeated points, single-cell
    /// clusters — the classic breakers of geometric index bounds.
    #[test]
    fn degenerate_geometries_survive(
        x in 0.0f64..32.0,
        y in 0.0f64..32.0,
        reps in 1usize..6,
        level in 2u8..5,
        measure_idx in 0usize..6,
    ) {
        let measure = Measure::ALL[measure_idx];
        let params = MeasureParams::with_eps(0.5);
        let trajs = vec![
            // all points identical
            Trajectory::new(0, vec![Point::new(x, y); reps]),
            // horizontal line through the same cell row
            Trajectory::new(1, (0..reps + 1).map(|i| Point::new(
                (x + i as f64 * 0.01).min(31.9), y)).collect()),
            // a normal trajectory elsewhere
            Trajectory::new(2, pts(&[(1.0, 1.0), (5.0, 7.0), (9.0, 3.0)])),
        ];
        let query = vec![Point::new(x, (y + 3.0) % 32.0)];
        check_complete_ranking(&trajs, &query, measure, params, level)?;
    }

    /// Small k keeps the running k-th distance `dk` finite, so exact
    /// verification runs through the early-abandoning kernels — the result
    /// must still match brute force exactly, and abandons can never exceed
    /// attempted verifications.
    #[test]
    fn early_abandoning_verification_matches_brute_force(
        raw in proptest::collection::vec(
            proptest::collection::vec((0.0f64..32.0, 0.0f64..32.0), 1..10),
            3..25,
        ),
        query in proptest::collection::vec((0.0f64..32.0, 0.0f64..32.0), 1..8),
        k in 1usize..4,
        level in 1u8..5,
        measure_idx in 0usize..6,
    ) {
        let trajs: Vec<Trajectory> = raw
            .into_iter()
            .enumerate()
            .map(|(i, p)| Trajectory::new(i as u64, pts(&p)))
            .collect();
        let query = pts(&query);
        let measure = Measure::ALL[measure_idx];
        let params = MeasureParams::with_eps(1.5);
        let grid = Grid::new(region(), level);
        let store = TrajStore::from_trajectories(&trajs);
        let trie = RpTrie::build(
            &store,
            grid,
            RpTrieConfig::for_measure(measure).with_params(params).with_np(2),
        );
        let r = trie.top_k(&store, &query, k);
        prop_assert!(r.stats.exact_abandoned <= r.stats.exact_computations);
        let mut expect: Vec<(f64, u64)> = trajs
            .iter()
            .map(|t| (params.distance(measure, &query, &t.points), t.id))
            .collect();
        expect.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        // Ties at the k-th distance may resolve to either id (Definition 3
        // permits any tied subset), so compare the distance sequence — it
        // must match brute force bit-for-bit — and check each reported
        // (id, dist) pair is that trajectory's true exact distance.
        prop_assert_eq!(r.hits.len(), k.min(trajs.len()), "{} k={}", measure, k);
        for (h, e) in r.hits.iter().zip(&expect) {
            prop_assert_eq!(h.dist.to_bits(), e.0.to_bits(), "{}: dist drifted", measure);
            let t = trajs.iter().find(|t| t.id == h.id).expect("hit id exists");
            let exact = params.distance(measure, &query, &t.points);
            prop_assert_eq!(h.dist.to_bits(), exact.to_bits(), "{}: wrong hit dist", measure);
        }
    }

    /// Duplicated trajectories: many ids share one leaf; Dmax and the tie
    /// handling must cope.
    #[test]
    fn duplicated_trajectories_share_leaves(
        n in 2usize..12,
        level in 2u8..5,
        measure_idx in 0usize..6,
    ) {
        let measure = Measure::ALL[measure_idx];
        let base = pts(&[(3.0, 4.0), (8.0, 9.0), (14.0, 6.0)]);
        let trajs: Vec<Trajectory> = (0..n)
            .map(|i| Trajectory::new(i as u64, base.clone()))
            .collect();
        let query = pts(&[(3.5, 4.5), (9.0, 9.5)]);
        let params = MeasureParams::with_eps(1.0);
        check_complete_ranking(&trajs, &query, measure, params, level)?;
    }
}

// The search must behave identically whatever dense/sparse split the
// frozen trie uses — a differential test pitting layouts against each
// other on random data.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn layouts_are_observationally_equivalent(
        raw in proptest::collection::vec(
            proptest::collection::vec((0.0f64..32.0, 0.0f64..32.0), 2..8),
            2..20,
        ),
        query in proptest::collection::vec((0.0f64..32.0, 0.0f64..32.0), 1..6),
        k in 1usize..6,
    ) {
        let trajs: Vec<Trajectory> = raw
            .into_iter()
            .enumerate()
            .map(|(i, p)| Trajectory::new(i as u64, pts(&p)))
            .collect();
        let query = pts(&query);
        let grid = Grid::new(region(), 4);
        let store = TrajStore::from_trajectories(&trajs);
        let mut results = Vec::new();
        for dense in [0u8, 1, 3] {
            let trie = RpTrie::build(
                &store,
                grid.clone(),
                RpTrieConfig::for_measure(Measure::Hausdorff).with_dense_levels(dense),
            );
            results.push(
                trie.top_k(&store, &query, k)
                    .hits
                    .iter()
                    .map(|h| (h.id, h.dist))
                    .collect::<Vec<_>>(),
            );
        }
        prop_assert_eq!(&results[0], &results[1]);
        prop_assert_eq!(&results[0], &results[2]);
    }
}
