//! Index persistence: a built RP-Trie serializes (serde) and deserializes
//! into an observationally identical index — build once, query anywhere.

use repose_distance::{Measure, MeasureParams};
use repose_model::{Mbr, Point, TrajStore, Trajectory};
use repose_rptrie::{RpTrie, RpTrieConfig};
use repose_zorder::Grid;

fn sample() -> (Vec<Trajectory>, Grid) {
    let trajs: Vec<Trajectory> = (0..40u64)
        .map(|i| {
            let y = (i % 8) as f64 * 3.0 + 1.0;
            let x0 = (i / 8) as f64 * 5.0 + 1.0;
            Trajectory::new(
                i,
                (0..6)
                    .map(|s| Point::new(x0 + s as f64 * 0.5, y + (s % 2) as f64 * 0.3))
                    .collect(),
            )
        })
        .collect();
    let grid = Grid::new(
        Mbr::new(Point::new(0.0, 0.0), Point::new(32.0, 32.0)),
        4,
    );
    (trajs, grid)
}

#[test]
fn serde_roundtrip_preserves_query_behaviour() {
    let (trajs, grid) = sample();
    let store = TrajStore::from_trajectories(&trajs);
    for measure in Measure::ALL {
        let trie = RpTrie::build(
            &store,
            grid.clone(),
            RpTrieConfig::for_measure(measure)
                .with_params(MeasureParams::with_eps(0.8))
                .with_np(3),
        );
        let json = serde_json::to_string(&trie).expect("serialize");
        let back: RpTrie = serde_json::from_str(&json).expect("deserialize");

        assert_eq!(trie.node_count(), back.node_count(), "{measure}");
        assert_eq!(trie.frozen().leaf_count(), back.frozen().leaf_count());
        assert_eq!(trie.pivots().len(), back.pivots().len());

        let q: Vec<Point> = vec![Point::new(6.2, 4.1), Point::new(7.0, 4.4)];
        for k in [1, 5, 17] {
            let a = trie.top_k(&store, &q, k);
            let b = back.top_k(&store, &q, k);
            assert_eq!(
                a.hits.iter().map(|h| h.id).collect::<Vec<_>>(),
                b.hits.iter().map(|h| h.id).collect::<Vec<_>>(),
                "{measure} k={k}"
            );
            assert_eq!(a.stats, b.stats, "{measure} k={k}: identical work");
        }
    }
}

#[test]
fn serialized_form_is_compact_relative_to_json_of_raw_data() {
    // Sanity guard against accidental payload bloat: the index JSON should
    // not dwarf the raw trajectory JSON.
    let (trajs, grid) = sample();
    let trie = RpTrie::build(
        &TrajStore::from_trajectories(&trajs),
        grid,
        RpTrieConfig::for_measure(Measure::Hausdorff).with_np(2),
    );
    let index_json = serde_json::to_string(&trie).unwrap().len();
    let data_json = serde_json::to_string(&trajs).unwrap().len();
    assert!(
        index_json < 20 * data_json,
        "index JSON {index_json} vs data JSON {data_json}"
    );
}
