//! The cross-search shared top-k collector: one live, monotonically
//! tightening global k-th-distance bound that every concurrently executing
//! local search consults and feeds.
//!
//! # How the bound works
//!
//! Each local search publishes every exact distance it accepts into its
//! local result heap. The collector keeps the best `k` published `(dist,
//! id)` pairs (deduplicated by id) in a mutex-guarded pool; whenever the
//! pool holds `k` entries, its worst distance is a sound **upper bound on
//! the global k-th distance** — any `k` real candidate distances have a
//! k-th smallest no smaller than the k-th smallest over *all* candidates.
//! Adding entries can only lower that worst distance, so the bound is
//! monotone non-increasing, which makes a lock-free read path possible:
//! the current bound is cached in an [`AtomicU64`] holding the distance's
//! IEEE-754 bits (for non-negative floats, bit order equals numeric order),
//! updated with `fetch_min` after each publish. Readers pay one relaxed
//! atomic load per refresh — never the mutex.
//!
//! # Why pruning with it is exact
//!
//! A search holding local threshold `dk_local` prunes with
//! `min(dk_local, bound())`. The bound over-approximates the global k-th
//! distance at all times, so any candidate it rejects has an exact distance
//! at least the final global k-th distance — it could only ever appear in
//! the global top-k as a tie at the k-th slot, and by the time the bound
//! has tightened to the k-th distance the pool already holds `k` published
//! hits at or below it, every one of which survives in some local result
//! heap (a local heap only evicts an entry for a strictly better one, and
//! each local heap retains its best `k`). The merged local results
//! therefore always contain `k` hits whose distance multiset equals the
//! exact answer's (Definition 3 of the paper permits any tied subset).

use repose_distance::ThresholdSource;
use std::collections::{BinaryHeap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Max-heap entry: worst retained published hit on top.
struct PoolEntry {
    dist: f64,
    id: u64,
}
impl PartialEq for PoolEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.id == other.id
    }
}
impl Eq for PoolEntry {}
impl PartialOrd for PoolEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PoolEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.id.cmp(&other.id))
    }
}

struct Pool {
    /// Best `k` published hits, worst on top.
    heap: BinaryHeap<PoolEntry>,
    /// Ids ever published — publish is idempotent per id, so re-publishing
    /// (e.g. a delta hit that is also passed as a trie seed) can never make
    /// one trajectory occupy two of the `k` slots and over-tighten the
    /// bound.
    seen: HashSet<u64>,
}

/// A shared global top-k threshold collector (see module docs).
///
/// One `SharedTopK` serves one logical query; every partition's local
/// search (and, in the serving layer, every delta scan) runs against the
/// same collector, so a hit found anywhere prunes everywhere. Create with
/// [`SharedTopK::new`], hand out `&SharedTopK` (it is `Sync`), and read the
/// final bound with [`SharedTopK::bound`] if desired — results themselves
/// still come from merging the local searches' hits.
pub struct SharedTopK {
    k: usize,
    /// Bit-encoded cached bound (non-negative f64 bits order numerically).
    bound_bits: AtomicU64,
    pool: Mutex<Pool>,
}

impl SharedTopK {
    /// A collector for a top-`k` query, starting from an infinite bound.
    pub fn new(k: usize) -> Self {
        SharedTopK::with_initial_bound(k, f64::INFINITY)
    }

    /// A collector whose bound starts at `initial` — for callers that
    /// already hold a sound upper bound on the global k-th distance (e.g.
    /// a completed seed-partition search).
    pub fn with_initial_bound(k: usize, initial: f64) -> Self {
        assert!(initial >= 0.0, "distance bounds are non-negative");
        SharedTopK {
            k,
            bound_bits: AtomicU64::new(initial.to_bits()),
            pool: Mutex::new(Pool {
                heap: BinaryHeap::with_capacity(k + 1),
                seen: HashSet::new(),
            }),
        }
    }

    /// The `k` this collector was created for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current upper bound on the global k-th distance (monotone
    /// non-increasing; `INFINITY` until `k` distinct hits were published).
    pub fn bound(&self) -> f64 {
        f64::from_bits(self.bound_bits.load(Ordering::Acquire))
    }

    /// Folds in an externally computed sound upper bound on the global
    /// k-th distance — e.g. one received from a remote coordinator whose
    /// pool merged hits from other shards. Monotone like every other
    /// bound update: a looser `bound` is a no-op, a tighter one wins via
    /// the same `fetch_min` the publish path uses, so remote and local
    /// tightenings compose without ordering constraints.
    pub fn tighten(&self, bound: f64) {
        debug_assert!(bound >= 0.0 && !bound.is_nan(), "bounds are non-negative");
        self.bound_bits.fetch_min(bound.to_bits(), Ordering::AcqRel);
    }

    /// Publishes the exact distance of candidate `id`. Idempotent per id.
    pub fn publish(&self, dist: f64, id: u64) {
        debug_assert!(dist >= 0.0 && !dist.is_nan(), "exact distances are non-negative");
        if self.k == 0 {
            return;
        }
        let mut pool = self.pool.lock().expect("shared top-k pool");
        if !pool.seen.insert(id) {
            return;
        }
        pool.heap.push(PoolEntry { dist, id });
        if pool.heap.len() > self.k {
            pool.heap.pop();
        }
        if pool.heap.len() == self.k {
            let kth = pool.heap.peek().expect("full pool").dist;
            // fetch_min keeps the bound monotone under racing publishers:
            // whichever k-th value is smallest wins, and every k-th value
            // ever computed is a valid upper bound.
            self.bound_bits.fetch_min(kth.to_bits(), Ordering::AcqRel);
        }
    }
}

impl ThresholdSource for SharedTopK {
    fn bound(&self) -> f64 {
        SharedTopK::bound(self)
    }
    fn publish(&self, dist: f64, id: u64) {
        SharedTopK::publish(self, dist, id)
    }
}

impl std::fmt::Debug for SharedTopK {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedTopK")
            .field("k", &self.k)
            .field("bound", &self.bound())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_is_kth_of_published() {
        let s = SharedTopK::new(3);
        assert_eq!(s.bound(), f64::INFINITY);
        s.publish(5.0, 1);
        s.publish(2.0, 2);
        assert_eq!(s.bound(), f64::INFINITY, "fewer than k hits bound nothing");
        s.publish(9.0, 3);
        assert_eq!(s.bound(), 9.0);
        s.publish(1.0, 4); // evicts 9.0
        assert_eq!(s.bound(), 5.0);
        s.publish(0.5, 5);
        assert_eq!(s.bound(), 2.0);
    }

    #[test]
    fn publish_is_idempotent_per_id() {
        let s = SharedTopK::new(2);
        s.publish(3.0, 7);
        s.publish(3.0, 7);
        s.publish(3.0, 7);
        assert_eq!(s.bound(), f64::INFINITY, "one trajectory must not fill two slots");
        s.publish(4.0, 8);
        assert_eq!(s.bound(), 4.0);
    }

    #[test]
    fn initial_bound_only_tightens() {
        let s = SharedTopK::with_initial_bound(2, 3.5);
        assert_eq!(s.bound(), 3.5);
        s.publish(10.0, 1);
        s.publish(11.0, 2);
        assert_eq!(s.bound(), 3.5, "a looser pool k-th must not loosen the bound");
        s.publish(1.0, 3);
        s.publish(2.0, 4);
        assert_eq!(s.bound(), 2.0);
    }

    #[test]
    fn zero_k_is_inert() {
        let s = SharedTopK::new(0);
        s.publish(1.0, 1);
        assert_eq!(s.bound(), f64::INFINITY);
    }

    /// The satellite-required contention test: many threads publish
    /// concurrently; the final bound must equal the k-th smallest distinct
    /// published distance, and the bound observed by any thread must never
    /// increase.
    #[test]
    fn fetch_min_under_contention() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 500;
        const K: usize = 10;
        for round in 0..20u64 {
            let s = SharedTopK::new(K);
            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    let s = &s;
                    scope.spawn(move || {
                        let mut last = f64::INFINITY;
                        for i in 0..PER_THREAD {
                            let id = t * PER_THREAD + i;
                            // deterministic pseudo-random positive distance
                            let h = (id ^ (round * 0x9E37_79B9)).wrapping_mul(0x2545_F491_4F6C_DD1D);
                            let dist = (h % 1_000_000) as f64 / 1000.0;
                            s.publish(dist, id);
                            // every thread also re-publishes its first id
                            s.publish(dist, t * PER_THREAD);
                            let b = s.bound();
                            assert!(b <= last, "bound went up: {last} -> {b}");
                            last = b;
                        }
                    });
                }
            });
            // Recompute the expected k-th over all (id-deduped) publishes.
            let mut all: Vec<f64> = (0..THREADS * PER_THREAD)
                .map(|id| {
                    let h = (id ^ (round * 0x9E37_79B9)).wrapping_mul(0x2545_F491_4F6C_DD1D);
                    (h % 1_000_000) as f64 / 1000.0
                })
                .collect();
            all.sort_by(f64::total_cmp);
            assert_eq!(s.bound(), all[K - 1], "round {round}");
        }
    }
}
