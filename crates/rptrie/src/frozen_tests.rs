//! Direct tests of the succinct frozen layout: the dense (bitmap) and
//! sparse (byte-sequence) encodings must navigate identically.

use crate::builder::BuildTrie;
use crate::pivot::PivotSet;
use crate::{RpTrie, RpTrieConfig};
use repose_distance::Measure;
use repose_model::{Mbr, Point, TrajStore, Trajectory};
use repose_zorder::Grid;

fn grid(level: u8) -> Grid {
    Grid::new(Mbr::new(Point::new(0.0, 0.0), Point::new(64.0, 64.0)), level)
}

fn traj(id: u64, pts: &[(f64, f64)]) -> Trajectory {
    Trajectory::new(id, pts.iter().map(|&(x, y)| Point::new(x, y)).collect())
}

/// A spread of trajectories that creates a multi-level trie with both
/// branching and shared prefixes.
fn store_of(trajs: &[Trajectory]) -> TrajStore {
    TrajStore::from_trajectories(trajs)
}

fn sample_trajs() -> Vec<Trajectory> {
    let mut out = Vec::new();
    let mut id = 0;
    for a in 0..6 {
        for b in 0..4 {
            let x0 = 4.0 + a as f64 * 9.0;
            let y0 = 4.0 + b as f64 * 13.0;
            out.push(traj(
                id,
                &[
                    (x0, y0),
                    (x0 + 5.0, y0 + 1.0),
                    (x0 + 11.0, y0 + 3.0),
                    (x0 + 17.0, y0 + 2.0),
                ],
            ));
            id += 1;
        }
    }
    out
}

/// The structural invariant behind the whole layout: for every
/// `dense_levels` choice, the frozen trie must expose the same logical tree.
#[test]
fn dense_and_sparse_encodings_expose_the_same_tree() {
    let trajs = sample_trajs();
    let store = store_of(&trajs);
    let g = grid(4);
    let reference = RpTrie::build(
        &store,
        g.clone(),
        RpTrieConfig::for_measure(Measure::Frechet).with_dense_levels(0),
    );
    for dense in [1u8, 2, 3, 8] {
        let other = RpTrie::build(
            &store,
            g.clone(),
            RpTrieConfig::for_measure(Measure::Frechet).with_dense_levels(dense),
        );
        assert_eq!(reference.node_count(), other.node_count(), "dense={dense}");
        // BFS both, comparing (labels, leaf members, hr) per node.
        let (fa, fb) = (reference.frozen(), other.frozen());
        let mut qa = vec![fa.root()];
        let mut qb = vec![fb.root()];
        let mut seen = 0;
        while let (Some(na), Some(nb)) = (qa.pop(), qb.pop()) {
            seen += 1;
            let ca = fa.children(na);
            let cb = fb.children(nb);
            assert_eq!(
                ca.iter().map(|c| c.0).collect::<Vec<_>>(),
                cb.iter().map(|c| c.0).collect::<Vec<_>>(),
                "labels diverge at node pair ({na}, {nb}), dense={dense}"
            );
            match (fa.leaf(na), fb.leaf(nb)) {
                (None, None) => {}
                (Some(la), Some(lb)) => {
                    assert_eq!(la.members, lb.members);
                    assert_eq!(la.dmax, lb.dmax);
                    assert_eq!(la.nmin, lb.nmin);
                }
                _ => panic!("leaf-ness diverges, dense={dense}"),
            }
            assert_eq!(fa.hr(na), fb.hr(nb));
            qa.extend(ca.iter().map(|c| c.1));
            qb.extend(cb.iter().map(|c| c.1));
        }
        assert_eq!(seen, reference.node_count(), "traversal covered all nodes");
    }
}

#[test]
fn every_trajectory_reachable_via_some_leaf() {
    let trajs = sample_trajs();
    let trie = RpTrie::build(
        &store_of(&trajs),
        grid(4),
        RpTrieConfig::for_measure(Measure::Hausdorff),
    );
    let f = trie.frozen();
    let mut members = Vec::new();
    let mut stack = vec![f.root()];
    while let Some(n) = stack.pop() {
        if let Some(l) = f.leaf(n) {
            members.extend_from_slice(l.members);
        }
        stack.extend(f.children(n).iter().map(|c| c.1));
    }
    members.sort_unstable();
    assert_eq!(members, (0..trajs.len() as u32).collect::<Vec<_>>());
}

#[test]
fn leaf_count_matches_reachable_leaves() {
    let trajs = sample_trajs();
    let trie = RpTrie::build(&store_of(&trajs), grid(3), RpTrieConfig::for_measure(Measure::Dtw));
    let f = trie.frozen();
    let mut leaves = 0;
    let mut stack = vec![f.root()];
    while let Some(n) = stack.pop() {
        if f.leaf(n).is_some() {
            leaves += 1;
        }
        stack.extend(f.children(n).iter().map(|c| c.1));
    }
    assert_eq!(leaves, f.leaf_count());
}

#[test]
fn wide_grid_falls_back_to_sparse_encoding() {
    // level 12 -> 2^24 cells per bitmap would be pathological; the freezer
    // must refuse dense encoding.
    let trajs = sample_trajs();
    let store = store_of(&trajs);
    let trie = RpTrie::build(
        &store,
        grid(12),
        RpTrieConfig::for_measure(Measure::Frechet).with_dense_levels(2),
    );
    assert_eq!(trie.frozen().dense_count(), 0);
    // still queryable
    let r = trie.top_k(&store, &trajs[0].points, 3);
    assert_eq!(r.hits[0].id, 0);
}

#[test]
fn single_trajectory_trie() {
    let trajs = vec![traj(9, &[(1.0, 1.0), (2.0, 2.0)])];
    let store = store_of(&trajs);
    let trie = RpTrie::build(
        &store,
        grid(4),
        RpTrieConfig::for_measure(Measure::Hausdorff),
    );
    assert!(trie.node_count() >= 2);
    assert_eq!(trie.frozen().leaf_count(), 1);
    let r = trie.top_k(&store, &[Point::new(1.5, 1.5)], 1);
    assert_eq!(r.hits[0].id, 9);
}

#[test]
fn build_trie_accessors_consistent_with_frozen() {
    let trajs = sample_trajs();
    let g = grid(4);
    let cfg = RpTrieConfig::for_measure(Measure::Frechet).with_np(0);
    let build = BuildTrie::construct(&store_of(&trajs), &g, &cfg, &PivotSet::empty());
    let frozen = build.freeze(&g, &cfg);
    assert_eq!(build.node_count(), frozen.node_count());
}

#[test]
fn mem_bytes_accounts_for_structures() {
    let trajs = sample_trajs();
    let small = RpTrie::build(
        &store_of(&trajs[..4]),
        grid(4),
        RpTrieConfig::for_measure(Measure::Hausdorff),
    );
    let large = RpTrie::build(
        &store_of(&trajs),
        grid(4),
        RpTrieConfig::for_measure(Measure::Hausdorff),
    );
    assert!(large.mem_bytes() > small.mem_bytes());
}
