use crate::pivot::PivotSet;
use crate::{FrozenTrie, RpTrieConfig};
use repose_distance::{DistScratch, Measure, TrajSummary};
use repose_model::{Point, TrajStore};
use repose_zorder::{Grid, ZValue};
use std::collections::HashMap;

/// How a trajectory's z-value sequence is derived before insertion
/// (Sections III-A/C and VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZSeqPolicy {
    /// The raw per-point cell sequence. Used for ERP / LCSS / EDR, whose
    /// element-wise costs are sensitive to run lengths.
    Raw,
    /// Consecutive duplicate cells collapsed. Used for Frechet and DTW
    /// (sound: a warping/coupling can dwell on a cell) and for the
    /// *unoptimized* Hausdorff trie.
    DedupConsecutive,
    /// Full z-value deduplication: the trajectory becomes a *set* of cells,
    /// freeing the builder to re-order it (step 1 of Section III-C). Only
    /// valid for order-independent measures (Hausdorff).
    DedupSet,
}

impl ZSeqPolicy {
    /// The policy the paper prescribes for `measure` (optimized or not).
    ///
    /// Interpretation note: Section III-C folds z-value *dedup* into the
    /// optimization, but the paper's reported Fig. 7 gains (8–20%) are far
    /// smaller than what full-dedup alone yields on slow-moving taxi data
    /// at the paper's coarse δ values. We therefore treat consecutive-run
    /// collapsing as part of the base reference-trajectory conversion and
    /// attribute only non-consecutive dedup + greedy re-arrangement to the
    /// optimized trie — the conservative reading, which reproduces Fig. 7's
    /// magnitude. (See DESIGN.md.)
    pub fn for_measure(measure: Measure, optimize: bool) -> Self {
        match measure {
            Measure::Hausdorff if optimize => ZSeqPolicy::DedupSet,
            Measure::Hausdorff | Measure::Frechet | Measure::Dtw => {
                ZSeqPolicy::DedupConsecutive
            }
            Measure::Lcss | Measure::Edr | Measure::Erp => ZSeqPolicy::Raw,
        }
    }
}

/// One leaf's payload under construction.
#[derive(Debug, Clone)]
struct BuildLeaf {
    /// Indices into the partition's trajectory slice.
    members: Vec<u32>,
    /// Per-member prefilter summaries (parallel to `members`), computed
    /// once here so query-time verification gets O(1) lower bounds.
    summaries: Vec<TrajSummary>,
    /// `Dmax`: max distance from member trajectories to the leaf's
    /// reference trajectory, under the index measure.
    dmax: f64,
    /// Shortest member length (tightens the LCSS leaf bound).
    nmin: u32,
}

/// A pointer-based (arena) RP-Trie, the mutable build form that is later
/// frozen into the succinct layout.
#[derive(Debug)]
pub struct BuildTrie {
    nodes: Vec<BuildNode>,
    np: usize,
}

#[derive(Debug)]
struct BuildNode {
    label: ZValue,
    children: Vec<u32>,
    leaf: Option<BuildLeaf>,
    /// Per-pivot (min, max) distance interval over the subtree (the `HR`
    /// array of Section III-B).
    hr: Vec<(f64, f64)>,
}

impl BuildNode {
    fn new(label: ZValue) -> Self {
        BuildNode { label, children: Vec::new(), leaf: None, hr: Vec::new() }
    }
}

/// A grouped reference trajectory: one distinct z-sequence and the member
/// trajectories sharing it.
struct Group {
    zseq: Vec<ZValue>,
    members: Vec<u32>,
}

impl BuildTrie {
    /// Builds the pointer trie for the trajectories of `store` (grouping,
    /// structure, `Dmax`, `HR`).
    pub fn construct(
        store: &TrajStore,
        grid: &Grid,
        cfg: &RpTrieConfig,
        pivots: &PivotSet,
    ) -> Self {
        let policy = ZSeqPolicy::for_measure(cfg.measure, cfg.optimize);
        let groups = group_by_zseq(store, grid, policy);
        let mut trie = BuildTrie { nodes: vec![BuildNode::new(0)], np: pivots.len() };
        match policy {
            ZSeqPolicy::DedupSet => trie.build_optimized(&groups),
            _ => {
                for g in &groups {
                    trie.insert_sequence(&g.zseq, g);
                }
            }
        }
        trie.fill_leaf_payloads(store, grid, cfg, &groups);
        trie.fill_hr(store, cfg, pivots);
        trie.sort_children();
        trie
    }

    /// Number of nodes, including the root.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Inserts one z-sequence, attaching the group at its terminal node.
    /// The group index is recorded via a placeholder leaf that
    /// `fill_leaf_payloads` completes.
    fn insert_sequence(&mut self, zseq: &[ZValue], group: &Group) {
        debug_assert!(!zseq.is_empty(), "empty reference trajectory");
        let mut cur = 0u32;
        for &z in zseq {
            cur = self.child_or_insert(cur, z);
        }
        let node = &mut self.nodes[cur as usize];
        debug_assert!(node.leaf.is_none(), "duplicate z-sequence group");
        node.leaf = Some(BuildLeaf {
            members: group.members.clone(),
            summaries: Vec::new(),
            dmax: 0.0,
            nmin: 0,
        });
    }

    fn child_or_insert(&mut self, parent: u32, z: ZValue) -> u32 {
        if let Some(&c) = self.nodes[parent as usize]
            .children
            .iter()
            .find(|&&c| self.nodes[c as usize].label == z)
        {
            return c;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(BuildNode::new(z));
        self.nodes[parent as usize].children.push(id);
        id
    }

    /// The greedy hitting-set construction (Section III-C and Appendix B).
    ///
    /// At each level, the most frequent remaining z-value becomes the next
    /// child; all sets containing it descend into that subtree with the
    /// value removed. Ties break toward the smaller z-value so builds are
    /// deterministic.
    fn build_optimized(&mut self, groups: &[Group]) {
        type Items = Vec<(Vec<ZValue>, u32)>;
        // Work items: (remaining set, group index). Sets are kept sorted so
        // removal and the leaf path reconstruction are cheap.
        let items: Items = groups
            .iter()
            .enumerate()
            .map(|(gi, g)| (g.zseq.clone(), gi as u32))
            .collect();
        let mut stack: Vec<(u32, Items)> = vec![(0, items)];
        while let Some((parent, mut items)) = stack.pop() {
            // Frequency table C(Z) over the remaining sets (Appendix B).
            let mut freq: HashMap<ZValue, u32> = HashMap::new();
            for (set, _) in &items {
                for &z in set {
                    *freq.entry(z).or_insert(0) += 1;
                }
            }
            while !items.is_empty() {
                // Most frequent z-value; ties toward smaller z.
                let (&zbest, _) = freq
                    .iter()
                    .filter(|&(_, &c)| c > 0)
                    .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                    .expect("non-empty items imply non-empty frequencies");
                let node = self.nodes.len() as u32;
                self.nodes.push(BuildNode::new(zbest));
                self.nodes[parent as usize].children.push(node);

                let mut descend: Items = Vec::new();
                items.retain_mut(|(set, gi)| {
                    if let Ok(pos) = set.binary_search(&zbest) {
                        // Incremental counting: C(Z) -= C(Z_z) as the item
                        // leaves this level (Appendix B's trick).
                        for &z in set.iter() {
                            *freq.get_mut(&z).expect("counted") -= 1;
                        }
                        let mut moved = std::mem::take(set);
                        moved.remove(pos);
                        descend.push((moved, *gi));
                        false
                    } else {
                        true
                    }
                });
                // Items whose set is exhausted terminate at `node`; the
                // leaf temporarily stores the *group index* (nmin sentinel
                // u32::MAX), resolved by `fill_leaf_payloads`.
                let mut remaining = Vec::new();
                for (set, gi) in descend {
                    if set.is_empty() {
                        debug_assert!(self.nodes[node as usize].leaf.is_none());
                        self.nodes[node as usize].leaf = Some(BuildLeaf {
                            members: vec![gi],
                            summaries: Vec::new(),
                            dmax: 0.0,
                            nmin: u32::MAX,
                        });
                    } else {
                        remaining.push((set, gi));
                    }
                }
                if !remaining.is_empty() {
                    stack.push((node, remaining));
                }
            }
        }
    }

    /// Completes leaf payloads: resolves optimized-build group indices,
    /// computes `Dmax` and `nmin`.
    fn fill_leaf_payloads(
        &mut self,
        store: &TrajStore,
        grid: &Grid,
        cfg: &RpTrieConfig,
        groups: &[Group],
    ) {
        // Reconstruct each leaf's reference trajectory by walking from the
        // root (iterative DFS carrying the path).
        let mut stack: Vec<(u32, Vec<ZValue>)> = vec![(0, Vec::new())];
        let mut work: Vec<(u32, Vec<ZValue>)> = Vec::new();
        while let Some((id, path)) = stack.pop() {
            let node = &self.nodes[id as usize];
            if node.leaf.is_some() {
                work.push((id, path.clone()));
            }
            for &c in &node.children {
                let mut p = path.clone();
                p.push(self.nodes[c as usize].label);
                stack.push((c, p));
            }
        }
        DistScratch::with_thread(|scratch| {
            for (id, path) in work {
                let ref_points: Vec<Point> =
                    path.iter().map(|&z| grid.reference_point(z)).collect();
                let leaf = self.nodes[id as usize].leaf.as_mut().expect("leaf");
                if leaf.nmin == u32::MAX {
                    // optimized build: members currently holds the group index
                    let gi = leaf.members[0] as usize;
                    leaf.members = groups[gi].members.clone();
                }
                let mut dmax = 0.0f64;
                let mut nmin = u32::MAX;
                let mut summaries = Vec::with_capacity(leaf.members.len());
                for &mi in &leaf.members {
                    let pts = store.points(mi as usize);
                    let d = cfg.params.distance_in(cfg.measure, pts, &ref_points, scratch);
                    if d > dmax {
                        dmax = d;
                    }
                    nmin = nmin.min(pts.len() as u32);
                    summaries.push(cfg.params.summary_of(pts));
                }
                leaf.dmax = dmax;
                leaf.nmin = nmin;
                leaf.summaries = summaries;
            }
        });
    }

    /// Computes the `HR` pivot-distance intervals bottom-up. Intervals
    /// cover the *actual* trajectories in each subtree (see DESIGN.md for
    /// why this differs benignly from the paper's Eq. 5).
    fn fill_hr(&mut self, store: &TrajStore, cfg: &RpTrieConfig, pivots: &PivotSet) {
        if pivots.is_empty() {
            return;
        }
        let np = pivots.len();
        // Distance of every trajectory to every pivot, computed once
        // (the O(N·L²·Np) cost the paper's analysis names).
        let mut tp: HashMap<u32, Vec<f64>> = HashMap::new();
        DistScratch::with_thread(|scratch| {
            for n in &self.nodes {
                if let Some(leaf) = &n.leaf {
                    for &mi in &leaf.members {
                        tp.entry(mi).or_insert_with(|| {
                            pivots
                                .pivots()
                                .iter()
                                .map(|p| {
                                    cfg.params.distance_in(
                                        cfg.measure,
                                        store.points(mi as usize),
                                        p,
                                        scratch,
                                    )
                                })
                                .collect()
                        });
                    }
                }
            }
        });
        // Post-order accumulation.
        let order = self.post_order();
        for id in order {
            let mut hr = vec![(f64::INFINITY, f64::NEG_INFINITY); np];
            let node = &self.nodes[id as usize];
            if let Some(leaf) = &node.leaf {
                for &mi in &leaf.members {
                    for (i, &d) in tp[&mi].iter().enumerate() {
                        hr[i].0 = hr[i].0.min(d);
                        hr[i].1 = hr[i].1.max(d);
                    }
                }
            }
            let children = node.children.clone();
            for c in children {
                for (i, &(lo, hi)) in self.nodes[c as usize].hr.iter().enumerate() {
                    hr[i].0 = hr[i].0.min(lo);
                    hr[i].1 = hr[i].1.max(hi);
                }
            }
            self.nodes[id as usize].hr = hr;
        }
    }

    fn post_order(&self) -> Vec<u32> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack: Vec<(u32, bool)> = vec![(0, false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                order.push(id);
            } else {
                stack.push((id, true));
                for &c in &self.nodes[id as usize].children {
                    stack.push((c, false));
                }
            }
        }
        order
    }

    fn sort_children(&mut self) {
        for i in 0..self.nodes.len() {
            let mut kids = std::mem::take(&mut self.nodes[i].children);
            kids.sort_by_key(|&c| self.nodes[c as usize].label);
            self.nodes[i].children = kids;
        }
    }

    /// Freezes into the succinct two-layer layout.
    pub fn freeze(&self, grid: &Grid, cfg: &RpTrieConfig) -> FrozenTrie {
        FrozenTrie::from_build(self, grid, cfg)
    }

    // ---- accessors for the freezer ----

    pub(crate) fn root(&self) -> u32 {
        0
    }

    pub(crate) fn label(&self, id: u32) -> ZValue {
        self.nodes[id as usize].label
    }

    pub(crate) fn children_of(&self, id: u32) -> &[u32] {
        &self.nodes[id as usize].children
    }

    pub(crate) fn hr_of(&self, id: u32) -> &[(f64, f64)] {
        &self.nodes[id as usize].hr
    }

    pub(crate) fn np(&self) -> usize {
        self.np
    }

    pub(crate) fn leaf_of(&self, id: u32) -> Option<(&[u32], &[TrajSummary], f64, u32)> {
        self.nodes[id as usize]
            .leaf
            .as_ref()
            .map(|l| (l.members.as_slice(), l.summaries.as_slice(), l.dmax, l.nmin))
    }
}

/// Groups trajectories by their (policy-transformed) z-sequence.
fn group_by_zseq(store: &TrajStore, grid: &Grid, policy: ZSeqPolicy) -> Vec<Group> {
    let mut map: HashMap<Vec<ZValue>, Vec<u32>> = HashMap::new();
    for slot in 0..store.len() {
        let pts = store.points(slot);
        if pts.is_empty() {
            continue;
        }
        let zseq = match policy {
            ZSeqPolicy::Raw => grid.z_sequence(pts),
            ZSeqPolicy::DedupConsecutive => grid.z_sequence_dedup(pts),
            ZSeqPolicy::DedupSet => {
                let mut s = grid.z_sequence(pts);
                s.sort_unstable();
                s.dedup();
                s
            }
        };
        map.entry(zseq).or_default().push(slot as u32);
    }
    let mut groups: Vec<Group> = map
        .into_iter()
        .map(|(zseq, members)| Group { zseq, members })
        .collect();
    // Deterministic build order.
    groups.sort_by(|a, b| a.zseq.cmp(&b.zseq));
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select_pivots;

    fn grid8() -> Grid {
        Grid::new(
            repose_model::Mbr::new(Point::new(0.0, 0.0), Point::new(8.0, 8.0)),
            3,
        )
    }

    fn traj(id: u64, pts: &[(f64, f64)]) -> repose_model::Trajectory {
        repose_model::Trajectory::new(
            id,
            pts.iter().map(|&(x, y)| Point::new(x, y)).collect(),
        )
    }

    fn store_of(trajs: &[repose_model::Trajectory]) -> TrajStore {
        TrajStore::from_trajectories(trajs)
    }

    fn cfg(measure: Measure) -> RpTrieConfig {
        RpTrieConfig::for_measure(measure)
    }

    #[test]
    fn basic_insert_shares_prefixes() {
        // Two trajectories sharing the first two cells.
        let trajs = vec![
            traj(0, &[(0.5, 0.5), (1.5, 0.5), (2.5, 0.5)]),
            traj(1, &[(0.5, 0.5), (1.5, 0.5), (2.5, 2.5)]),
        ];
        let c = cfg(Measure::Frechet).with_np(0);
        let t = BuildTrie::construct(&store_of(&trajs), &grid8(), &c, &PivotSet::empty());
        // root + 2 shared + 2 distinct tails = 5
        assert_eq!(t.node_count(), 5);
    }

    #[test]
    fn identical_reference_trajectories_share_a_leaf() {
        let trajs = vec![
            traj(0, &[(0.5, 0.5), (1.5, 0.5)]),
            traj(1, &[(0.6, 0.6), (1.4, 0.4)]), // same cells
        ];
        let c = cfg(Measure::Frechet).with_np(0);
        let t = BuildTrie::construct(&store_of(&trajs), &grid8(), &c, &PivotSet::empty());
        let leaves: Vec<_> = (0..t.node_count() as u32)
            .filter_map(|i| t.leaf_of(i))
            .collect();
        assert_eq!(leaves.len(), 1);
        assert_eq!(leaves[0].0.len(), 2);
    }

    #[test]
    fn prefix_sequence_leaf_on_internal_node() {
        // One reference trajectory is a prefix of another -> the shorter
        // terminates on a node that also has children ($ semantics).
        let trajs = vec![
            traj(0, &[(0.5, 0.5), (1.5, 0.5)]),
            traj(1, &[(0.5, 0.5), (1.5, 0.5), (2.5, 0.5)]),
        ];
        let c = cfg(Measure::Frechet).with_np(0);
        let t = BuildTrie::construct(&store_of(&trajs), &grid8(), &c, &PivotSet::empty());
        let with_both: Vec<_> = (0..t.node_count() as u32)
            .filter(|&i| t.leaf_of(i).is_some() && !t.children_of(i).is_empty())
            .collect();
        assert_eq!(with_both.len(), 1);
    }

    #[test]
    fn dmax_bounded_by_half_diagonal_for_hausdorff() {
        let trajs = vec![
            traj(0, &[(0.3, 0.3), (1.7, 0.7), (3.3, 3.9)]),
            traj(1, &[(4.1, 4.9), (6.5, 7.5)]),
        ];
        let g = grid8();
        let c = cfg(Measure::Hausdorff).with_np(0);
        let t = BuildTrie::construct(&store_of(&trajs), &g, &c, &PivotSet::empty());
        for i in 0..t.node_count() as u32 {
            if let Some((members, summaries, dmax, nmin)) = t.leaf_of(i) {
                assert_eq!(members.len(), summaries.len());
                assert!(!members.is_empty());
                assert!(dmax <= g.half_diagonal() + 1e-12, "dmax {dmax}");
                assert!(nmin >= 2);
            }
        }
    }

    #[test]
    fn optimized_build_uses_fewer_or_equal_nodes() {
        // Trajectories visiting the same cells in different orders compress
        // under the set policy.
        let trajs = vec![
            traj(0, &[(0.5, 0.5), (2.5, 0.5), (4.5, 0.5)]),
            traj(1, &[(4.5, 0.5), (2.5, 0.5), (0.5, 0.5)]),
            traj(2, &[(2.5, 0.5), (0.5, 0.5), (4.5, 0.5)]),
        ];
        let g = grid8();
        let store = store_of(&trajs);
        let unopt = BuildTrie::construct(
            &store,
            &g,
            &cfg(Measure::Hausdorff).with_np(0).with_optimize(false),
            &PivotSet::empty(),
        );
        let opt = BuildTrie::construct(
            &store,
            &g,
            &cfg(Measure::Hausdorff).with_np(0).with_optimize(true),
            &PivotSet::empty(),
        );
        assert!(opt.node_count() < unopt.node_count());
        // All three share one leaf in the optimized trie (same cell set).
        let leaves: Vec<_> = (0..opt.node_count() as u32)
            .filter_map(|i| opt.leaf_of(i))
            .collect();
        assert_eq!(leaves.len(), 1);
        assert_eq!(leaves[0].0.len(), 3);
        assert_eq!(opt.node_count(), 4); // root + 3 set elements
    }

    #[test]
    fn hr_intervals_cover_children() {
        let trajs: Vec<repose_model::Trajectory> = (0..10)
            .map(|i| {
                traj(
                    i,
                    &[
                        (0.5 + (i % 4) as f64, 0.5),
                        (1.5 + (i % 4) as f64, 1.5),
                        (2.5, 2.5 + (i % 3) as f64),
                    ],
                )
            })
            .collect();
        let g = grid8();
        let c = cfg(Measure::Hausdorff).with_np(3);
        let store = store_of(&trajs);
        let pivots = select_pivots(&store, &c);
        let t = BuildTrie::construct(&store, &g, &c, &pivots);
        // Every parent's interval contains every child's interval.
        for id in 0..t.node_count() as u32 {
            for &ch in t.children_of(id) {
                for (p, c_) in t.hr_of(id).iter().zip(t.hr_of(ch)) {
                    assert!(p.0 <= c_.0 + 1e-12 && p.1 >= c_.1 - 1e-12);
                }
            }
        }
        // Root interval covers the distance of every trajectory to every pivot.
        let root_hr = t.hr_of(0).to_vec();
        for tr in &trajs {
            for (pi, p) in pivots.pivots().iter().enumerate() {
                let d = c.params.distance(c.measure, &tr.points, p);

                assert!(d >= root_hr[pi].0 - 1e-12 && d <= root_hr[pi].1 + 1e-12);
            }
        }
    }

    #[test]
    fn children_sorted_by_label() {
        let trajs: Vec<repose_model::Trajectory> = (0..8)
            .map(|i| traj(i, &[((i % 8) as f64 + 0.5, 0.5), (7.5, 7.5)]))
            .collect();
        let c = cfg(Measure::Frechet).with_np(0);
        let t = BuildTrie::construct(&store_of(&trajs), &grid8(), &c, &PivotSet::empty());
        for id in 0..t.node_count() as u32 {
            let labels: Vec<ZValue> =
                t.children_of(id).iter().map(|&c| t.label(c)).collect();
            let mut sorted = labels.clone();
            sorted.sort_unstable();
            assert_eq!(labels, sorted);
        }
    }

    /// Appendix B, Example 3: first-level greedy choices over Table X.
    #[test]
    fn greedy_hitting_set_example_3() {
        // Cells 1..=6 stand in for {0001, 0010, 0011, 0100, 0101, 0110};
        // we drive build_optimized directly with synthetic groups.
        let sets: Vec<Vec<ZValue>> = vec![
            vec![1, 3],
            vec![1, 3, 5],
            vec![2, 3],
            vec![2, 3, 5],
            vec![3, 5],
            vec![1, 4],
            vec![2, 4],
            vec![5, 6],
        ];
        let groups: Vec<Group> = sets
            .into_iter()
            .map(|zseq| Group { zseq, members: vec![0] })
            .collect();
        let mut trie = BuildTrie { nodes: vec![BuildNode::new(0)], np: 0 };
        trie.build_optimized(&groups);
        // First level: z1 = 3 (freq 5), z2 = 4 (freq 2), z3 from Z8.
        let first: Vec<ZValue> = trie
            .children_of(0)
            .iter()
            .map(|&c| trie.label(c))
            .collect();
        assert_eq!(first.len(), 3);
        assert!(first.contains(&3));
        assert!(first.contains(&4));
        // Z8 = {5, 6}: either 5 or 6 may be chosen third; Example 3 picks 5
        // "arbitrarily"; our tie-break picks the most frequent remaining,
        // which is 5 (freq 1) tie 6 (freq 1) -> smaller value 5.
        assert!(first.contains(&5));
        // Every set must be findable as a root-to-leaf path (hitting
        // property) — count leaves.
        let leaves = (0..trie.node_count() as u32)
            .filter(|&i| trie.leaf_of(i).is_some())
            .count();
        assert_eq!(leaves, 8);
    }
}
