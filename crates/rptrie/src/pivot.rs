use crate::RpTrieConfig;
use repose_distance::DistScratch;
use repose_model::{Point, TrajStore};
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;

/// The pivot trajectories selected for a partition (Section III-B).
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct PivotSet {
    pivots: Vec<Vec<Point>>,
}

impl PivotSet {
    /// The empty pivot set (non-metric measures, or `Np = 0`).
    pub fn empty() -> Self {
        PivotSet::default()
    }

    /// Number of pivots `Np`.
    pub fn len(&self) -> usize {
        self.pivots.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.pivots.is_empty()
    }

    /// The pivot trajectories.
    pub fn pivots(&self) -> &[Vec<Point>] {
        &self.pivots
    }

    /// Distances from `query` to all pivots under the index measure —
    /// the `dqp` array of Section IV-D.
    pub fn query_distances(&self, cfg: &RpTrieConfig, query: &[Point]) -> Vec<f64> {
        DistScratch::with_thread(|s| self.query_distances_in(cfg, query, s))
    }

    /// [`PivotSet::query_distances`] against a caller-managed
    /// [`DistScratch`].
    pub fn query_distances_in(
        &self,
        cfg: &RpTrieConfig,
        query: &[Point],
        scratch: &mut DistScratch,
    ) -> Vec<f64> {
        self.pivots
            .iter()
            .map(|p| cfg.params.distance_in(cfg.measure, query, p, scratch))
            .collect()
    }

    /// Approximate heap size in bytes.
    pub fn mem_bytes(&self) -> usize {
        self.pivots
            .iter()
            .map(|p| p.capacity() * std::mem::size_of::<Point>())
            .sum()
    }
}

/// Selects `Np` pivot trajectories by the paper's sampling heuristic
/// (Section III-B, following its reference \[21\]):
///
/// Uniformly sample `m` candidate groups of `Np` trajectories each; score a
/// group by the sum of all pairwise distances between its members; keep the
/// group with the largest score (pivots as mutually distant as possible).
///
/// Deterministic for a fixed `cfg.seed`.
pub fn select_pivots(store: &TrajStore, cfg: &RpTrieConfig) -> PivotSet {
    let np = cfg.np.min(store.len());
    if np == 0 || store.is_empty() {
        return PivotSet::empty();
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let groups = cfg.pivot_groups.max(1);
    let mut best_score = f64::NEG_INFINITY;
    let mut best: Vec<usize> = Vec::new();
    DistScratch::with_thread(|scratch| {
        for _ in 0..groups {
            let idxs: Vec<usize> = sample(&mut rng, store.len(), np).into_vec();
            let mut score = 0.0;
            for i in 0..idxs.len() {
                for j in (i + 1)..idxs.len() {
                    score += cfg.params.distance_in(
                        cfg.measure,
                        store.points(idxs[i]),
                        store.points(idxs[j]),
                        scratch,
                    );
                }
            }
            if score > best_score {
                best_score = score;
                best = idxs;
            }
        }
    });
    PivotSet {
        pivots: best.into_iter().map(|i| store.points(i).to_vec()).collect(),
    }
}

/// The pivot-based lower bound `LBp` (Section IV-D, corrected form — see
/// DESIGN.md):
///
/// With `dqp[i] = D(τq, pivot_i)` and `hr` the node's interleaved
/// `min, max` interval floats over `D(pivot_i, τ)` for every trajectory
/// `τ` in the subtree (`hr[2i], hr[2i + 1]` — the flat layout
/// [`crate::FrozenTrie::hr`] stores and archives), the triangle inequality
/// gives `D(τq, τ) >= max(dqp[i] - hr[2i+1], hr[2i] - dqp[i], 0)`.
pub fn pivot_lower_bound(dqp: &[f64], hr: &[f64]) -> f64 {
    debug_assert_eq!(dqp.len() * 2, hr.len());
    let mut lb = 0.0f64;
    for (d, pair) in dqp.iter().zip(hr.chunks_exact(2)) {
        let (lo, hi) = (pair[0], pair[1]);
        let b = (d - hi).max(lo - d);
        if b > lb {
            lb = b;
        }
    }
    lb
}

#[cfg(test)]
mod tests {
    use super::*;
    use repose_distance::Measure;

    fn store_of(n: u64, offset: impl Fn(u64) -> f64) -> TrajStore {
        let mut s = TrajStore::new();
        for i in 0..n {
            let o = offset(i);
            let pts: Vec<Point> = (0..5).map(|j| Point::new(o + j as f64, o)).collect();
            s.push(i, &pts);
        }
        s
    }

    fn cfg() -> RpTrieConfig {
        RpTrieConfig::for_measure(Measure::Hausdorff)
    }

    #[test]
    fn selects_np_pivots() {
        let store = store_of(20, |i| i as f64);
        let p = select_pivots(&store, &cfg().with_np(5));
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn np_capped_by_dataset_size() {
        let store = store_of(3, |i| i as f64);
        let p = select_pivots(&store, &cfg().with_np(5));
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn empty_when_disabled_or_no_data() {
        assert!(select_pivots(&TrajStore::new(), &cfg()).is_empty());
        let store = store_of(1, |_| 0.0);
        assert!(select_pivots(&store, &cfg().with_np(0)).is_empty());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let store = store_of(30, |i| (i * 7 % 13) as f64);
        let a = select_pivots(&store, &cfg().with_seed(9));
        let b = select_pivots(&store, &cfg().with_seed(9));
        assert_eq!(a.pivots(), b.pivots());
    }

    #[test]
    fn prefers_spread_out_groups() {
        // Two tight clusters far apart; a good pivot pair spans both.
        let mut store = store_of(10, |_| 0.0);
        for i in 10..20u64 {
            let pts: Vec<Point> =
                (0..5).map(|j| Point::new(1000.0 + j as f64, 1000.0)).collect();
            store.push(i, &pts);
        }
        let p = select_pivots(&store, &cfg().with_np(2).with_seed(3));
        let d = cfg()
            .params
            .distance(Measure::Hausdorff, &p.pivots()[0], &p.pivots()[1]);
        assert!(d > 100.0, "pivots should span the clusters, got {d}");
    }

    #[test]
    fn pivot_lower_bound_cases() {
        // query far outside the subtree's pivot-distance interval
        assert_eq!(pivot_lower_bound(&[10.0], &[1.0, 3.0]), 7.0);
        // query closer to the pivot than any subtree trajectory
        assert_eq!(pivot_lower_bound(&[1.0], &[5.0, 9.0]), 4.0);
        // query inside the interval: bound collapses to zero
        assert_eq!(pivot_lower_bound(&[6.0], &[5.0, 9.0]), 0.0);
        // multiple pivots: the max bound wins
        assert_eq!(
            pivot_lower_bound(&[10.0, 1.0], &[1.0, 3.0, 5.0, 9.0]),
            7.0
        );
        // no pivots
        assert_eq!(pivot_lower_bound(&[], &[]), 0.0);
    }

    #[test]
    fn query_distances_uses_measure() {
        let store = store_of(6, |i| i as f64);
        let c = cfg().with_np(2);
        let p = select_pivots(&store, &c);
        let q = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let d = p.query_distances(&c, &q);
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|&x| x >= 0.0));
    }
}
