//! Per-measure incremental lower-bound state carried by each frontier entry
//! of the best-first search (Sections IV and VI).
//!
//! Every state supports `push` (consume one more reference cell in `O(m)`,
//! Algorithm 1), `lbo` (one-side bound for internal-node pruning) and
//! `lbt` (two-side bound for leaf pruning). Soundness per measure:
//!
//! * **Hausdorff** — Eq. 2 / Eq. 3 verbatim.
//! * **Frechet** — Eq. 7 / Eq. 8, with the leaf slack tightened from
//!   `√2δ/2` to the leaf's stored `Dmax` (≤ `√2δ/2` by construction).
//! * **DTW** — Eq. 13 / Eq. 14, ground distance `d'` = min distance from the
//!   query point to the reference *cell*.
//! * **ERP** — DTW-style optimistic DP: match cost `d'(q_i, cell_j)`,
//!   reference-gap cost `minDist(cell_j, g)`, query-gap cost `d(q_i, g)`.
//!   Every cost underestimates its exact counterpart, so any alignment of
//!   the true trajectory induces a cheaper alignment of the cell sequence.
//! * **EDR** — optimistic edit DP: substitution is free iff the `ε`-box of
//!   the query point intersects the cell.
//! * **LCSS** — optimistic match DP gives an *upper* bound on the LCSS
//!   length; only the leaf bound is usable (internal `lbo` is 0), because
//!   the distance normalizer `min(m, n)` needs the member lengths.

use crate::frozen::LeafRef;
use repose_distance::{DtwColumn, FrechetColumn, HausdorffState, Measure, MeasureParams};
use repose_model::{Mbr, Point};
use repose_zorder::{Grid, ZValue};

/// Incremental bound state for one root-to-node path.
#[derive(Debug, Clone)]
pub(crate) enum BoundState {
    Hausdorff(HausdorffState),
    Frechet(FrechetColumn),
    Dtw(DtwColumn),
    Erp(ErpColumn),
    Edr(EdrColumn),
    Lcss(LcssColumn),
}

impl BoundState {
    /// Fresh state at the root (no reference cell consumed).
    pub fn new(measure: Measure, params: &MeasureParams, query: &[Point]) -> Self {
        let m = query.len();
        match measure {
            Measure::Hausdorff => BoundState::Hausdorff(HausdorffState::new(m)),
            Measure::Frechet => BoundState::Frechet(FrechetColumn::new(m)),
            Measure::Dtw => BoundState::Dtw(DtwColumn::new(m)),
            Measure::Erp => BoundState::Erp(ErpColumn::new(query, params.erp_gap)),
            Measure::Edr => BoundState::Edr(EdrColumn::new(m)),
            Measure::Lcss => BoundState::Lcss(LcssColumn::new(m)),
        }
    }

    /// Consumes the reference cell `z` (the label of the child node being
    /// entered), updating intermediate results in `O(m)`.
    pub fn push(&mut self, query: &[Point], grid: &Grid, z: ZValue, params: &MeasureParams) {
        match self {
            BoundState::Hausdorff(s) => s.push(query, grid.reference_point(z)),
            BoundState::Frechet(s) => {
                let rp = grid.reference_point(z);
                s.push(query, rp);
            }
            BoundState::Dtw(s) => {
                let cell = grid.cell_mbr(z);
                s.push_with(query, |q| cell.min_dist(*q));
            }
            BoundState::Erp(s) => s.push(query, grid.cell_mbr(z)),
            BoundState::Edr(s) => s.push(query, grid.cell_mbr(z), params.eps),
            BoundState::Lcss(s) => s.push(query, grid.cell_mbr(z), params.eps),
        }
    }

    /// One-side lower bound `LBo` for pruning the subtree below this node.
    pub fn lbo(&self, grid: &Grid) -> f64 {
        let slack = grid.half_diagonal();
        match self {
            BoundState::Hausdorff(s) => (s.cmax() - slack).max(0.0),
            BoundState::Frechet(s) => (s.cmin() - slack).max(0.0),
            BoundState::Dtw(s) => s.cmin(),
            BoundState::Erp(s) => s.cmin(),
            BoundState::Edr(s) => s.cmin(),
            // LCSS has no sound internal bound (the normalizer is unknown).
            BoundState::Lcss(_) => 0.0,
        }
    }

    /// Two-side lower bound `LBt` for the trajectories stored in a leaf.
    pub fn lbt(&self, grid: &Grid, leaf: &LeafRef<'_>, query_len: usize) -> f64 {
        let slack = grid.half_diagonal();
        match self {
            BoundState::Hausdorff(s) => (s.full() - leaf.dmax).max(0.0),
            // Dmax <= √2δ/2 for Frechet; use the tighter stored value.
            BoundState::Frechet(s) => (s.last() - leaf.dmax.min(slack)).max(0.0),
            BoundState::Dtw(s) => s.last(),
            BoundState::Erp(s) => s.last(),
            BoundState::Edr(s) => s.last(),
            BoundState::Lcss(s) => {
                let denom = query_len.min(leaf.nmin as usize).max(1) as f64;
                (1.0 - s.max_len() as f64 / denom).max(0.0)
            }
        }
    }
}

/// Optimistic ERP column kernel (see module docs). Row 0 is the
/// all-reference-gaps boundary, so the column has `m + 1` entries.
#[derive(Debug, Clone)]
pub(crate) struct ErpColumn {
    col: Vec<f64>,
    /// `d(q_i, g)` per query point, precomputed.
    qgap: Vec<f64>,
    gap: Point,
    cmin: f64,
}

impl ErpColumn {
    pub fn new(query: &[Point], gap: Point) -> Self {
        let qgap: Vec<f64> = query.iter().map(|q| q.dist(&gap)).collect();
        // f_{i,0} = sum of query gap costs (delete all query points so far).
        let mut col = Vec::with_capacity(query.len() + 1);
        col.push(0.0);
        for &g in &qgap {
            col.push(col.last().unwrap() + g);
        }
        ErpColumn { col, qgap, gap, cmin: f64::INFINITY }
    }

    pub fn push(&mut self, query: &[Point], cell: Mbr) {
        let rgap = cell.min_dist(self.gap);
        let mut cmin;
        let mut prev_im1 = self.col[0];
        self.col[0] += rgap;
        cmin = self.col[0];
        for i in 1..self.col.len() {
            let matchc = cell.min_dist(query[i - 1]);
            let old = self.col[i];
            self.col[i] = (prev_im1 + matchc)
                .min(old + rgap)
                .min(self.col[i - 1] + self.qgap[i - 1]);
            prev_im1 = old;
            if self.col[i] < cmin {
                cmin = self.col[i];
            }
        }
        self.cmin = cmin;
    }

    pub fn cmin(&self) -> f64 {
        if self.cmin.is_finite() {
            self.cmin
        } else {
            0.0 // no reference cell consumed yet (root)
        }
    }

    pub fn last(&self) -> f64 {
        *self.col.last().expect("non-empty column")
    }
}

/// Optimistic EDR column kernel: substitution cost is 0 iff the query
/// point's `ε`-box intersects the cell (a necessary condition for the exact
/// per-dimension EDR match), otherwise 1; insert/delete cost 1.
#[derive(Debug, Clone)]
pub(crate) struct EdrColumn {
    col: Vec<u32>,
    cmin: u32,
}

impl EdrColumn {
    pub fn new(m: usize) -> Self {
        // f_{i,0} = i deletions of query points.
        EdrColumn { col: (0..=m as u32).collect(), cmin: u32::MAX }
    }

    fn can_match(q: Point, cell: &Mbr, eps: f64) -> bool {
        q.x >= cell.min.x - eps
            && q.x <= cell.max.x + eps
            && q.y >= cell.min.y - eps
            && q.y <= cell.max.y + eps
    }

    pub fn push(&mut self, query: &[Point], cell: Mbr, eps: f64) {
        let mut prev_im1 = self.col[0];
        self.col[0] += 1;
        let mut cmin = self.col[0];
        for i in 1..self.col.len() {
            let sub = u32::from(!Self::can_match(query[i - 1], &cell, eps));
            let old = self.col[i];
            self.col[i] = (prev_im1 + sub).min(old + 1).min(self.col[i - 1] + 1);
            prev_im1 = old;
            cmin = cmin.min(self.col[i]);
        }
        self.cmin = cmin;
    }

    pub fn cmin(&self) -> f64 {
        if self.cmin == u32::MAX {
            0.0
        } else {
            f64::from(self.cmin)
        }
    }

    pub fn last(&self) -> f64 {
        f64::from(*self.col.last().expect("non-empty column"))
    }
}

/// Optimistic LCSS column kernel: maintains an upper bound on the LCSS
/// length between the query and any trajectory whose reference prefix is
/// the consumed cell sequence.
#[derive(Debug, Clone)]
pub(crate) struct LcssColumn {
    col: Vec<u32>,
}

impl LcssColumn {
    pub fn new(m: usize) -> Self {
        LcssColumn { col: vec![0; m + 1] }
    }

    pub fn push(&mut self, query: &[Point], cell: Mbr, eps: f64) {
        let mut prev_im1 = self.col[0];
        for i in 1..self.col.len() {
            let old = self.col[i];
            self.col[i] = if EdrColumn::can_match(query[i - 1], &cell, eps) {
                (prev_im1 + 1).max(old).max(self.col[i - 1])
            } else {
                old.max(self.col[i - 1])
            };
            prev_im1 = old;
        }
    }

    /// Upper bound on the LCSS length (last row of the DP).
    pub fn max_len(&self) -> u32 {
        *self.col.last().expect("non-empty column")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repose_distance::{edr, erp, lcss_length};
    use repose_model::Mbr;

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    fn grid8() -> Grid {
        Grid::new(Mbr::new(Point::new(0.0, 0.0), Point::new(8.0, 8.0)), 3)
    }

    /// ERP optimistic kernel must lower-bound the exact ERP against any
    /// trajectory whose points lie in the pushed cells.
    #[test]
    fn erp_column_lower_bounds_exact() {
        let g = grid8();
        let gap = Point::new(0.0, 0.0);
        let q = pts(&[(0.4, 0.3), (1.2, 1.7), (3.6, 2.2)]);
        let t = pts(&[(0.6, 0.6), (2.5, 1.5), (3.5, 2.5), (5.5, 5.5)]);
        let mut col = ErpColumn::new(&q, gap);
        for p in &t {
            col.push(&q, g.cell_mbr(g.z_value(*p)));
        }
        let exact = erp(&q, &t, gap);
        assert!(
            col.last() <= exact + 1e-9,
            "lbt {} > exact {exact}",
            col.last()
        );
        assert!(col.cmin() <= exact + 1e-9);
    }

    #[test]
    fn erp_cmin_monotone() {
        let g = grid8();
        let q = pts(&[(0.4, 0.3), (1.2, 1.7)]);
        let t = pts(&[(7.5, 7.5), (6.5, 6.5), (5.5, 7.5)]);
        let mut col = ErpColumn::new(&q, Point::new(0.0, 0.0));
        let mut prev = 0.0;
        for p in &t {
            col.push(&q, g.cell_mbr(g.z_value(*p)));
            assert!(col.cmin() >= prev - 1e-12);
            prev = col.cmin();
        }
    }

    #[test]
    fn edr_column_lower_bounds_exact() {
        let g = grid8();
        let eps = 0.4;
        let q = pts(&[(0.4, 0.3), (1.2, 1.7), (3.6, 2.2)]);
        let t = pts(&[(0.6, 0.6), (2.5, 1.5), (3.5, 2.5), (5.5, 5.5)]);
        let mut col = EdrColumn::new(q.len());
        for p in &t {
            col.push(&q, g.cell_mbr(g.z_value(*p)), eps);
        }
        let exact = edr(&q, &t, eps);
        assert!(col.last() <= exact + 1e-9);
        assert!(col.cmin() <= exact + 1e-9);
    }

    #[test]
    fn edr_cmin_monotone() {
        let g = grid8();
        let q = pts(&[(0.4, 0.3), (1.2, 1.7), (2.0, 2.0)]);
        let t = pts(&[(7.5, 7.5), (6.5, 6.5), (5.5, 7.5), (4.5, 7.5)]);
        let mut col = EdrColumn::new(q.len());
        let mut prev = 0.0;
        for p in &t {
            col.push(&q, g.cell_mbr(g.z_value(*p)), 0.1);
            assert!(col.cmin() >= prev);
            prev = col.cmin();
        }
    }

    #[test]
    fn lcss_column_upper_bounds_exact_length() {
        let g = grid8();
        let eps = 0.4;
        let q = pts(&[(0.4, 0.3), (1.2, 1.7), (3.6, 2.2), (5.0, 5.0)]);
        let t = pts(&[(0.6, 0.6), (1.4, 1.6), (3.5, 2.5), (5.5, 5.5)]);
        let mut col = LcssColumn::new(q.len());
        for p in &t {
            col.push(&q, g.cell_mbr(g.z_value(*p)), eps);
        }
        let exact = lcss_length(&q, &t, eps) as u32;
        assert!(col.max_len() >= exact, "{} < {exact}", col.max_len());
        assert!(col.max_len() <= q.len().min(t.len()) as u32);
    }

    #[test]
    fn bound_state_dispatch_runs_for_all_measures() {
        let g = grid8();
        let q = pts(&[(0.4, 0.3), (1.2, 1.7), (3.6, 2.2)]);
        let params = MeasureParams::with_eps(0.4);
        let leaf = LeafRef { members: &[0], summaries: &[], dmax: 0.5, nmin: 3 };
        for m in Measure::ALL {
            let mut st = BoundState::new(m, &params, &q);
            for z in [g.z_value(q[0]), g.z_value(q[1])] {
                st.push(&q, &g, z, &params);
            }
            let lbo = st.lbo(&g);
            let lbt = st.lbt(&g, &leaf, q.len());
            assert!(lbo >= 0.0 && lbo.is_finite(), "{m}: lbo {lbo}");
            assert!(lbt >= 0.0 && lbt.is_finite(), "{m}: lbt {lbt}");
        }
    }

    #[test]
    fn hausdorff_lbo_matches_eq_2() {
        // Query far from the pushed cells: LBo = directed dist - √2δ/2.
        let g = grid8();
        let q = pts(&[(0.5, 0.5)]);
        let params = MeasureParams::default();
        let mut st = BoundState::new(Measure::Hausdorff, &params, &q);
        let z = g.z_value(Point::new(7.5, 0.5)); // ref point (7.5, 0.5)
        st.push(&q, &g, z, &params);
        let expect = (7.0 - g.half_diagonal()).max(0.0);
        assert!((st.lbo(&g) - expect).abs() < 1e-12);
    }

    #[test]
    fn lcss_lbt_uses_nmin() {
        let g = grid8();
        let q = pts(&[(0.5, 0.5), (1.5, 1.5), (2.5, 2.5), (3.5, 3.5)]);
        let params = MeasureParams::with_eps(0.1);
        let mut st = BoundState::new(Measure::Lcss, &params, &q);
        // push one matching cell
        st.push(&q, &g, g.z_value(q[0]), &params);
        assert_eq!(st.lbo(&g), 0.0, "LCSS internal bound must stay zero");
        // leaf with min member length 2: denom = min(4, 2) = 2, L_ub = 1
        let leaf = LeafRef { members: &[0], summaries: &[], dmax: 0.0, nmin: 2 };
        assert!((st.lbt(&g, &leaf, q.len()) - 0.5).abs() < 1e-12);
    }
}
