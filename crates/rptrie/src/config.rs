use repose_distance::{Measure, MeasureParams};

/// Build/search configuration for an [`crate::RpTrie`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RpTrieConfig {
    /// The similarity measure the index serves.
    pub measure: Measure,
    /// Per-measure parameters (LCSS/EDR threshold, ERP gap).
    pub params: MeasureParams,
    /// Number of pivot trajectories `Np` (paper default 5). Ignored for
    /// non-metric measures. Zero disables pivot pruning.
    pub np: usize,
    /// Number of sampled candidate pivot groups `m` (Section III-B).
    pub pivot_groups: usize,
    /// Apply the z-value re-arrangement optimization (Section III-C).
    /// Only effective for order-independent measures (Hausdorff).
    pub optimize: bool,
    /// Number of upper trie levels stored in the bitmap (LOUDS-dense)
    /// encoding; deeper levels use byte sequences (Section III-B,
    /// "Succinct trie structure").
    pub dense_levels: u8,
    /// RNG seed for pivot sampling (determinism across partitions/runs).
    pub seed: u64,
}

impl RpTrieConfig {
    /// The paper's defaults for a given measure (`Np = 5`, optimization on
    /// exactly for order-independent measures).
    pub fn for_measure(measure: Measure) -> Self {
        RpTrieConfig {
            measure,
            params: MeasureParams::default(),
            np: 5,
            pivot_groups: 8,
            optimize: measure.is_order_independent(),
            dense_levels: 2,
            seed: 0x5EED,
        }
    }

    /// Overrides the measure parameters.
    pub fn with_params(mut self, params: MeasureParams) -> Self {
        self.params = params;
        self
    }

    /// Overrides `Np`.
    pub fn with_np(mut self, np: usize) -> Self {
        self.np = np;
        self
    }

    /// Forces the trie optimization on or off (Fig. 7's ablation).
    pub fn with_optimize(mut self, optimize: bool) -> Self {
        self.optimize = optimize;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the number of dense (bitmap-encoded) levels.
    pub fn with_dense_levels(mut self, dense_levels: u8) -> Self {
        self.dense_levels = dense_levels;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let c = RpTrieConfig::for_measure(Measure::Hausdorff);
        assert_eq!(c.np, 5);
        assert!(c.optimize);
        let c = RpTrieConfig::for_measure(Measure::Frechet);
        assert!(!c.optimize, "Frechet is order sensitive (Section VI-A)");
        let c = RpTrieConfig::for_measure(Measure::Dtw);
        assert!(!c.optimize);
    }

    #[test]
    fn builder_style_overrides() {
        let c = RpTrieConfig::for_measure(Measure::Hausdorff)
            .with_np(7)
            .with_optimize(false)
            .with_seed(42)
            .with_dense_levels(3);
        assert_eq!(c.np, 7);
        assert!(!c.optimize);
        assert_eq!(c.seed, 42);
        assert_eq!(c.dense_levels, 3);
    }
}
