//! Best-first top-k search over a frozen RP-Trie (Section IV-A,
//! Algorithm 2 of the paper's appendix).

use crate::bounds::BoundState;
use crate::pivot::pivot_lower_bound;
use crate::{Hit, NodeId, RpTrie};
use repose_distance::{bound_exceeds, DistScratch, ThresholdSource, BATCH_LANES};
use repose_model::{Point, TrajId, TrajStore};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Counters describing how much work a query did — used by the experiment
/// harness to show pruning power.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes popped from the frontier.
    pub nodes_visited: usize,
    /// Child nodes discarded by `LBo`/`LBp` before entering the frontier.
    pub nodes_pruned: usize,
    /// Leaf payloads whose bounds were evaluated.
    pub leaves_visited: usize,
    /// Leaf payloads skipped by `LBt`/`LBp`.
    pub leaves_pruned: usize,
    /// Exact trajectory distance computations (attempted verifications;
    /// includes the abandoned ones).
    pub exact_computations: usize,
    /// Verifications the threshold-aware kernel cut short: the candidate
    /// was refuted by the running k-th distance before paying the full
    /// `O(m·n)` cost (prefilter hit or mid-DP abandon).
    pub exact_abandoned: usize,
    /// Child bound evaluations skipped outright: the popped path's own
    /// lower bound already exceeded the live k-th distance (after leaf
    /// verification tightened it, or a concurrent partition published a
    /// better hit), and child bounds only grow along a path, so the
    /// incremental `BoundState` was never pushed for these children.
    pub bounds_abandoned: usize,
}

impl SearchStats {
    /// Accumulates another search's counters into this one (used by the
    /// distributed merge and the serving layer).
    pub fn merge(&mut self, other: &SearchStats) {
        self.nodes_visited += other.nodes_visited;
        self.nodes_pruned += other.nodes_pruned;
        self.leaves_visited += other.leaves_visited;
        self.leaves_pruned += other.leaves_pruned;
        self.exact_computations += other.exact_computations;
        self.exact_abandoned += other.exact_abandoned;
        self.bounds_abandoned += other.bounds_abandoned;
    }
}

/// The outcome of a local top-k query.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Up to `k` hits, ascending by distance (ties by trajectory id).
    pub hits: Vec<Hit>,
    /// Work counters.
    pub stats: SearchStats,
}

impl SearchResult {
    /// The k-th (worst) distance among the hits, or `None` with fewer than
    /// `k` hits.
    pub fn kth_distance(&self, k: usize) -> Option<f64> {
        (self.hits.len() >= k).then(|| self.hits[k - 1].dist)
    }
}

/// Frontier entry: a trie node with the lower bound of its path and the
/// incremental bound state of Algorithm 1 (`t.r`, `t.cmax` in the paper's
/// pseudocode).
struct Frontier {
    lb: f64,
    node: NodeId,
    state: BoundState,
}

impl PartialEq for Frontier {
    fn eq(&self, other: &Self) -> bool {
        self.lb == other.lb && self.node == other.node
    }
}
impl Eq for Frontier {}
impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        // min-heap on lb; ties toward the shallower node id for stability
        other
            .lb
            .total_cmp(&self.lb)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Result-heap entry (the paper's `minHeap`, actually a max-heap over the
/// current best k so the worst element is at the top).
#[derive(Debug, Clone, Copy)]
struct Worst {
    dist: f64,
    id: u64,
}
impl PartialEq for Worst {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.id == other.id
    }
}
impl Eq for Worst {}
impl PartialOrd for Worst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Worst {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.id.cmp(&other.id))
    }
}

pub(crate) fn top_k(
    trie: &RpTrie,
    store: &TrajStore,
    query: &[Point],
    k: usize,
) -> SearchResult {
    top_k_filtered(trie, store, query, k, f64::INFINITY, None, &[], None)
}

pub(crate) fn top_k_bounded(
    trie: &RpTrie,
    store: &TrajStore,
    query: &[Point],
    k: usize,
    threshold: f64,
) -> SearchResult {
    top_k_filtered(trie, store, query, k, threshold, None, &[], None)
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn top_k_filtered(
    trie: &RpTrie,
    store: &TrajStore,
    query: &[Point],
    k: usize,
    threshold: f64,
    filter: Option<&(dyn Fn(TrajId) -> bool + Sync)>,
    seeds: &[Hit],
    shared: Option<&dyn ThresholdSource>,
) -> SearchResult {
    let mut stats = SearchStats::default();
    if k == 0 || query.is_empty() {
        return SearchResult { hits: Vec::new(), stats };
    }
    if store.is_empty() {
        // Nothing in the trie: the answer is the best k seeds.
        let mut hits: Vec<Hit> = seeds.to_vec();
        hits.sort_by(Hit::cmp_by_dist_then_id);
        hits.truncate(k);
        return SearchResult { hits, stats };
    }
    // A seed shadows the indexed trajectory with the same id (the caller's
    // version of that trajectory wins); without this, seeding a hit for an
    // id the trie also stores would return the id twice.
    let seed_ids: HashSet<u64> = seeds.iter().map(|s| s.id).collect();
    let grid = trie.grid();
    let frozen = trie.frozen();
    let cfg = trie.config();
    let params = cfg.params;

    // One scratch for the whole search: every pivot distance and leaf
    // verification below reuses it, so a warm worker thread's verification
    // loop performs zero heap allocations (`DistScratch` is per-thread).
    DistScratch::with_thread(|scratch| {
    // dqp: distances from the query to every pivot (Section IV-D).
    let dqp = trie.pivots().query_distances_in(cfg, query, scratch);
    stats.exact_computations += dqp.len();
    // The query's own prefilter summary, computed once: paired with the
    // per-member summaries stored in each leaf it yields an O(1) lower
    // bound per verification candidate.
    let qsum = params.summary_of(query);

    let mut best: BinaryHeap<Worst> = BinaryHeap::with_capacity(k + 1);
    // Seed hits (e.g. the serving layer's delta-buffer candidates) join
    // the result heap up front, so the trie search starts with a tight
    // pruning threshold shared between trie and delta — the trie is only
    // explored where it can still beat the best seeds.
    for s in seeds {
        best.push(Worst { dist: s.dist, id: s.id });
        if best.len() > k {
            best.pop();
        }
    }
    // The live pruning threshold: the local k-th distance, clamped by the
    // caller's static threshold and — in shared-threshold execution — by
    // the global collector's bound, re-read on every call so hits other
    // partitions publish tighten this search mid-flight.
    let dk = |best: &BinaryHeap<Worst>| -> f64 {
        let mut t = threshold;
        if let Some(s) = shared {
            t = t.min(s.bound());
        }
        if best.len() == k {
            t = t.min(best.peek().expect("non-empty").dist);
        }
        t
    };

    let mut frontier: BinaryHeap<Frontier> = BinaryHeap::new();
    frontier.push(Frontier {
        lb: 0.0,
        node: frozen.root(),
        state: BoundState::new(cfg.measure, &params, query),
    });

    let mut kids: Vec<(u64, NodeId)> = Vec::new();
    while let Some(entry) = frontier.pop() {
        // Step 2): stop as soon as the best unexplored bound cannot beat dk.
        if entry.lb >= dk(&best) {
            break;
        }
        stats.nodes_visited += 1;

        // Leaf payload at this node ('$'-terminated reference trajectory).
        if let Some(leaf) = frozen.leaf(entry.node) {
            stats.leaves_visited += 1;
            let lbt = entry.state.lbt(grid, &leaf, query.len());
            let lbp = pivot_lower_bound(&dqp, frozen.hr(entry.node));
            if lbt.max(lbp) < dk(&best) {
                // Verify members under the *live* k-th distance: the kernel
                // returns the exact distance only when it beats dk and
                // abandons (cheaply) when it cannot — same results as the
                // unbounded `params.distance` + `d < dk` check. The
                // prefilter reuses the member summary frozen into the leaf:
                // O(1) per candidate instead of O(m+n); the candidate's
                // points are a contiguous arena slice.
                //
                // On a SIMD backend, measures with a lane-batched kernel
                // collect a vector's worth of members per dk refresh and
                // verify them in parallel lanes. dk is stale within one
                // group but stale only ever means *larger*, so a group
                // member can be accepted where the one-at-a-time scan would
                // have abandoned it — never the reverse; the extras carry
                // distances above the final k-th and fall back out of the
                // bounded heap, leaving the returned hits identical.
                let group_len = cfg.measure.batch_lanes();
                let mut group = [(0.0f64, [].as_slice()); BATCH_LANES];
                let mut gids = [0u64; BATCH_LANES];
                let mut scored = [None; BATCH_LANES];
                let mut si = 0;
                while si < leaf.members.len() {
                    let thr = dk(&best);
                    let mut nb = 0;
                    while si < leaf.members.len() && nb < group_len {
                        let mi = leaf.members[si];
                        let summary = &leaf.summaries[si];
                        si += 1;
                        let id = store.id(mi as usize);
                        if !seed_ids.is_empty() && seed_ids.contains(&id) {
                            continue;
                        }
                        if let Some(f) = filter {
                            if !f(id) {
                                continue;
                            }
                        }
                        stats.exact_computations += 1;
                        let lb = params.summary_lower_bound(cfg.measure, &qsum, summary);
                        group[nb] = (lb, store.points(mi as usize));
                        gids[nb] = id;
                        nb += 1;
                    }
                    params.distance_within_batch_in(
                        cfg.measure,
                        query,
                        &group[..nb],
                        thr,
                        scratch,
                        &mut scored[..nb],
                    );
                    for (&d, &id) in scored[..nb].iter().zip(&gids[..nb]) {
                        match d {
                            Some(d) => {
                                best.push(Worst { dist: d, id });
                                if best.len() > k {
                                    best.pop();
                                }
                                // A hit accepted here prunes every other
                                // search sharing the collector.
                                if let Some(s) = shared {
                                    s.publish(d, id);
                                }
                            }
                            None => stats.exact_abandoned += 1,
                        }
                    }
                }
            } else {
                stats.leaves_pruned += 1;
            }
        }

        // Step 3): expand children with fresh incremental bounds.
        kids.clear();
        frozen.children_into(entry.node, &mut kids);
        for (ci, &(z, child)) in kids.iter().enumerate() {
            // dk may have tightened since this entry was popped (its own
            // leaf hits above, or a concurrently searching partition).
            // Bounds only grow along a path (`lbo` is monotone per measure,
            // `HR` intervals shrink), so once the popped path's own bound
            // exceeds the live dk no extension can win: stop pushing the
            // incremental BoundState entirely instead of evaluating and
            // discarding each child.
            if bound_exceeds(entry.lb, dk(&best)) {
                stats.bounds_abandoned += kids.len() - ci;
                break;
            }
            let mut state = entry.state.clone();
            state.push(query, grid, z, &params);
            let lbo = state.lbo(grid);
            let lbp = pivot_lower_bound(&dqp, frozen.hr(child));
            let lb = lbo.max(lbp);
            if lb < dk(&best) {
                frontier.push(Frontier { lb, node: child, state });
            } else {
                stats.nodes_pruned += 1;
            }
        }
    }

    let mut hits: Vec<Hit> = best
        .into_sorted_vec()
        .into_iter()
        .map(|w| Hit { id: w.id, dist: w.dist })
        .collect();
    debug_assert!(hits.windows(2).all(|w| w[0].dist <= w[1].dist));
    hits.truncate(k);
    SearchResult { hits, stats }
    }) // DistScratch::with_thread
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RpTrieConfig;
    use repose_distance::{Measure, MeasureParams};
    use repose_model::{Mbr, Trajectory};
    use repose_zorder::Grid;

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    fn grid8() -> Grid {
        Grid::new(Mbr::new(Point::new(0.0, 0.0), Point::new(8.0, 8.0)), 3)
    }

    fn store_of(trajs: &[Trajectory]) -> TrajStore {
        TrajStore::from_trajectories(trajs)
    }

    /// The paper's running example: Table II, Example 1 (top-2 under
    /// Hausdorff is {τ1, τ4}).
    fn paper_dataset() -> Vec<Trajectory> {
        vec![
            Trajectory::new(1, pts(&[(0.5, 7.5), (2.5, 7.5), (6.5, 7.5), (6.5, 4.5)])),
            Trajectory::new(2, pts(&[(1.5, 0.5), (2.5, 0.5), (2.5, 4.5), (4.5, 4.5)])),
            Trajectory::new(
                3,
                pts(&[(4.5, 0.5), (7.5, 0.5), (7.5, 2.5), (4.5, 2.5), (4.5, 1.5)]),
            ),
            Trajectory::new(4, pts(&[(0.5, 7.5), (2.5, 7.5), (5.5, 7.5), (5.5, 3.5)])),
            Trajectory::new(
                5,
                pts(&[(1.5, 0.5), (2.5, 0.5), (2.5, 5.5), (0.5, 5.5), (0.5, 2.5)]),
            ),
        ]
    }

    fn query() -> Vec<Point> {
        pts(&[(0.5, 6.5), (2.5, 6.5), (4.5, 6.5)])
    }

    #[test]
    fn example_1_top_2() {
        let trajs = paper_dataset();
        let store = store_of(&trajs);
        let trie = RpTrie::build(
            &store,
            grid8(),
            RpTrieConfig::for_measure(Measure::Hausdorff).with_np(2),
        );
        let r = trie.top_k(&store, &query(), 2);
        let ids: Vec<u64> = r.hits.iter().map(|h| h.id).collect();
        assert_eq!(ids, vec![1, 4]);
        assert!((r.hits[0].dist - 2.83).abs() < 0.01);
        assert!((r.hits[1].dist - 3.16).abs() < 0.01);
    }

    #[test]
    fn matches_linear_scan_for_every_measure() {
        let trajs = paper_dataset();
        let store = store_of(&trajs);
        let q = query();
        let params = MeasureParams::with_eps(1.5);
        for measure in Measure::ALL {
            let trie = RpTrie::build(
                &store,
                grid8(),
                RpTrieConfig::for_measure(measure)
                    .with_params(params)
                    .with_np(2),
            );
            for k in 1..=5 {
                let got = trie.top_k(&store, &q, k);
                // brute force
                let mut expect: Vec<(f64, u64)> = trajs
                    .iter()
                    .map(|t| (params.distance(measure, &q, &t.points), t.id))
                    .collect();
                expect.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                let expect_ids: Vec<u64> = expect.iter().take(k).map(|e| e.1).collect();
                let got_ids: Vec<u64> = got.hits.iter().map(|h| h.id).collect();
                assert_eq!(got_ids, expect_ids, "{measure} k={k}");
                for (h, e) in got.hits.iter().zip(expect.iter()) {
                    assert!((h.dist - e.0).abs() < 1e-9, "{measure} dist mismatch");
                }
            }
        }
    }

    #[test]
    fn k_larger_than_dataset_returns_all() {
        let trajs = paper_dataset();
        let store = store_of(&trajs);
        let trie = RpTrie::build(
            &store,
            grid8(),
            RpTrieConfig::for_measure(Measure::Hausdorff),
        );
        let r = trie.top_k(&store, &query(), 50);
        assert_eq!(r.hits.len(), 5);
    }

    #[test]
    fn k_zero_and_empty_query() {
        let trajs = paper_dataset();
        let store = store_of(&trajs);
        let trie = RpTrie::build(
            &store,
            grid8(),
            RpTrieConfig::for_measure(Measure::Hausdorff),
        );
        assert!(trie.top_k(&store, &query(), 0).hits.is_empty());
        assert!(trie.top_k(&store, &[], 3).hits.is_empty());
    }

    #[test]
    fn bounded_search_respects_threshold() {
        let trajs = paper_dataset();
        let store = store_of(&trajs);
        let trie = RpTrie::build(
            &store,
            grid8(),
            RpTrieConfig::for_measure(Measure::Hausdorff),
        );
        // Only τ1 (2.83) beats a threshold of 3.0.
        let r = trie.top_k_bounded(&store, &query(), 5, 3.0);
        let ids: Vec<u64> = r.hits.iter().map(|h| h.id).collect();
        assert_eq!(ids, vec![1]);
    }

    #[test]
    fn pruning_happens_on_selective_queries() {
        // Build a larger structured dataset: many far-away trajectories and
        // one near the query; expect substantially fewer exact computations
        // than a scan.
        let mut trajs = paper_dataset();
        for i in 0..200u64 {
            let bx = 5.0 + (i % 3) as f64;
            let by = (i % 5) as f64 * 0.5;
            trajs.push(Trajectory::new(
                100 + i,
                pts(&[(bx, by), (bx + 0.4, by + 0.2), (bx + 0.9, by + 0.4)]),
            ));
        }
        let store = store_of(&trajs);
        let trie = RpTrie::build(
            &store,
            grid8(),
            RpTrieConfig::for_measure(Measure::Hausdorff).with_np(3),
        );
        let r = trie.top_k(&store, &query(), 2);
        assert_eq!(r.hits[0].id, 1);
        assert!(
            r.stats.exact_computations < trajs.len() / 2,
            "expected pruning, got {} exact computations over {} trajectories",
            r.stats.exact_computations,
            trajs.len()
        );
    }

    #[test]
    fn early_abandoning_kicks_in_on_selective_queries() {
        // Decoys sharing τ1's exact cell sequence (coarse level-1 grid):
        // the leaf bound cannot separate them, so every member reaches
        // exact verification — where only the threshold-aware kernel can
        // refute the ones that lose to the running k-th distance.
        let mut trajs = paper_dataset();
        let base = &trajs[0].points.clone();
        for i in 0..40u64 {
            let jit = (i % 8) as f64 * 0.18;
            trajs.push(Trajectory::new(
                100 + i,
                base.iter().map(|p| Point::new(p.x + jit, p.y)).collect(),
            ));
        }
        let grid = Grid::new(Mbr::new(Point::new(0.0, 0.0), Point::new(8.0, 8.0)), 1);
        let store = store_of(&trajs);
        for measure in Measure::ALL {
            let trie = RpTrie::build(
                &store,
                grid.clone(),
                RpTrieConfig::for_measure(measure).with_params(MeasureParams::with_eps(1.5)),
            );
            let r = trie.top_k(&store, &query(), 2);
            assert!(
                r.stats.exact_abandoned > 0,
                "{measure}: expected abandoned verifications, stats {:?}",
                r.stats
            );
            assert!(r.stats.exact_abandoned <= r.stats.exact_computations);
        }
    }

    #[test]
    fn seeded_search_merges_and_prunes() {
        let trajs = paper_dataset();
        let store = store_of(&trajs);
        let q = query();
        let trie = RpTrie::build(
            &store,
            grid8(),
            RpTrieConfig::for_measure(Measure::Hausdorff).with_np(2),
        );
        // A dominating external candidate must win; a hopeless one must
        // not appear.
        let champion = Hit { id: 100, dist: 0.5 };
        let hopeless = Hit { id: 101, dist: 1e9 };
        let r = trie.top_k_seeded(&store, &q, 2, &[champion, hopeless], None);
        let ids: Vec<u64> = r.hits.iter().map(|h| h.id).collect();
        assert_eq!(ids, vec![100, 1]);

        // k good seeds tighten the threshold: never more exact distance
        // computations than the unseeded search.
        let unseeded = trie.top_k(&store, &q, 2);
        let seeded = trie.top_k_seeded(
            &store,
            &q,
            2,
            &[Hit { id: 100, dist: 0.5 }, Hit { id: 102, dist: 0.6 }],
            None,
        );
        assert!(seeded.stats.exact_computations <= unseeded.stats.exact_computations);

        // Seeds + filter: filter applies to indexed trajectories only.
        let no_t1 = |id: u64| id != 1;
        let r = trie.top_k_seeded(&store, &q, 2, &[champion], Some(&no_t1));
        let ids: Vec<u64> = r.hits.iter().map(|h| h.id).collect();
        assert_eq!(ids, vec![100, 4]);

        // A seed sharing an indexed id shadows the indexed copy: the id
        // appears once, at the seed's distance (the serving layer's
        // "delta version wins" upsert semantics).
        let shadow = Hit { id: 1, dist: 0.25 };
        let r = trie.top_k_seeded(&store, &q, 5, &[shadow], None);
        let ones: Vec<&Hit> = r.hits.iter().filter(|h| h.id == 1).collect();
        assert_eq!(ones.len(), 1, "id 1 must appear exactly once");
        assert_eq!(ones[0].dist, 0.25);

        // Empty trie store: the seeds alone are ranked and truncated.
        let empty_store = TrajStore::new();
        let empty = RpTrie::build(
            &empty_store,
            grid8(),
            RpTrieConfig::for_measure(Measure::Hausdorff),
        );
        let r = empty.top_k_seeded(&empty_store, &q, 1, &[hopeless, champion], None);
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.hits[0].id, 100);
    }

    #[test]
    fn shared_collector_prunes_across_tries() {
        use crate::SharedTopK;
        // Two disjoint "partitions" over the paper dataset.
        let all = paper_dataset();
        let (p0, p1) = (store_of(&all[..2]), store_of(&all[2..]));
        let q = query();
        let build = |store: &TrajStore| {
            RpTrie::build(
                store,
                grid8(),
                RpTrieConfig::for_measure(Measure::Hausdorff).with_np(2),
            )
        };
        let (t0, t1) = (build(&p0), build(&p1));
        for k in 1..=4 {
            // Independent searches, merged at the end (the old path).
            let (a, b) = (t0.top_k(&p0, &q, k), t1.top_k(&p1, &q, k));
            let mut indep: Vec<Hit> = [a.hits.clone(), b.hits.clone()].concat();
            indep.sort_by(Hit::cmp_by_dist_then_id);
            indep.truncate(k);

            // Shared-threshold searches against one collector.
            let c = SharedTopK::new(k);
            let (sa, sb) = (
                t0.top_k_shared(&p0, &q, k, &[], None, &c),
                t1.top_k_shared(&p1, &q, k, &[], None, &c),
            );
            let mut shared: Vec<Hit> = [sa.hits.clone(), sb.hits.clone()].concat();
            shared.sort_by(Hit::cmp_by_dist_then_id);
            shared.truncate(k);

            assert_eq!(
                indep.iter().map(|h| (h.dist.to_bits(), h.id)).collect::<Vec<_>>(),
                shared.iter().map(|h| (h.dist.to_bits(), h.id)).collect::<Vec<_>>(),
                "k={k}"
            );
            // The second search ran under the first's published bound:
            // never more total verification work than independent runs.
            assert!(
                sa.stats.exact_computations + sb.stats.exact_computations
                    <= a.stats.exact_computations + b.stats.exact_computations,
                "k={k}"
            );
        }
    }

    #[test]
    fn concurrent_tightening_abandons_bound_pushes() {
        use repose_distance::ThresholdSource;
        use std::sync::atomic::{AtomicBool, Ordering};

        /// Simulates another partition finding a great hit mid-search:
        /// infinite until anything is published here, then (unsoundly —
        /// this tests the mechanism, not exactness) zero.
        struct CollapseAfterFirstPublish(AtomicBool);
        impl ThresholdSource for CollapseAfterFirstPublish {
            fn bound(&self) -> f64 {
                if self.0.load(Ordering::Relaxed) {
                    0.0
                } else {
                    f64::INFINITY
                }
            }
            fn publish(&self, _dist: f64, _id: u64) {
                self.0.store(true, Ordering::Relaxed);
            }
        }

        // A prefix family far from the query: the node holding the prefix
        // leaf also has children, so when the bound collapses right after
        // its members verify, the child BoundStates are never pushed.
        let far = pts(&[(6.5, 0.5), (7.5, 0.5)]);
        let mut trajs = vec![Trajectory::new(1, far.clone())];
        for i in 0..4u64 {
            let mut ext = far.clone();
            ext.push(Point::new(7.5, 1.5 + i as f64));
            trajs.push(Trajectory::new(2 + i, ext));
        }
        let store = store_of(&trajs);
        let trie = RpTrie::build(
            &store,
            grid8(),
            RpTrieConfig::for_measure(Measure::Frechet).with_np(0),
        );
        let src = CollapseAfterFirstPublish(AtomicBool::new(false));
        let r = trie.top_k_shared(&store, &query(), 2, &[], None, &src);
        assert!(
            r.stats.bounds_abandoned > 0,
            "expected skipped child bound pushes, stats {:?}",
            r.stats
        );
    }

    #[test]
    fn optimized_and_unoptimized_tries_agree() {
        let trajs = paper_dataset();
        let store = store_of(&trajs);
        let q = query();
        let opt = RpTrie::build(
            &store,
            grid8(),
            RpTrieConfig::for_measure(Measure::Hausdorff).with_optimize(true),
        );
        let unopt = RpTrie::build(
            &store,
            grid8(),
            RpTrieConfig::for_measure(Measure::Hausdorff).with_optimize(false),
        );
        for k in 1..=5 {
            let a: Vec<u64> = opt.top_k(&store, &q, k).hits.iter().map(|h| h.id).collect();
            let b: Vec<u64> = unopt.top_k(&store, &q, k).hits.iter().map(|h| h.id).collect();
            assert_eq!(a, b, "k={k}");
        }
    }

    #[test]
    fn dense_level_variations_agree() {
        let trajs = paper_dataset();
        let store = store_of(&trajs);
        let q = query();
        for dense in [0u8, 1, 2, 4] {
            let trie = RpTrie::build(
                &store,
                grid8(),
                RpTrieConfig::for_measure(Measure::Frechet).with_dense_levels(dense),
            );
            let ids: Vec<u64> = trie.top_k(&store, &q, 3).hits.iter().map(|h| h.id).collect();
            assert_eq!(ids.len(), 3, "dense={dense}");
            assert_eq!(ids[0], 1, "dense={dense}");
        }
    }
}
