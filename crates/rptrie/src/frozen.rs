use crate::builder::BuildTrie;
use crate::RpTrieConfig;
use repose_distance::TrajSummary;
use repose_succinct::{varint, BitVec, RankSelect};
use repose_zorder::{Grid, ZValue};

/// Index of a node in the frozen trie (BFS order, root = 0).
pub type NodeId = u32;

/// A leaf's payload: the trajectories whose reference trajectory ends here.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct LeafPayload {
    /// Indices into the partition's trajectory slice (`Tid` in Fig. 2).
    pub members: Vec<u32>,
    /// Per-member prefilter summaries (parallel to `members`), built once
    /// at construction so verification sites get an O(1) lower bound per
    /// candidate instead of re-walking both trajectories.
    pub summaries: Vec<TrajSummary>,
    /// `Dmax`: maximum distance from the members to the leaf's reference
    /// trajectory under the index measure.
    pub dmax: f64,
    /// Shortest member trajectory length (tightens the LCSS leaf bound).
    pub nmin: u32,
}

/// The immutable, succinct physical form of an RP-Trie (Section III-B,
/// "Succinct trie structure").
///
/// Nodes live in BFS order. The upper `dense_levels` levels use the paper's
/// bitmap layout: per dense node, an `M`-bit child bitmap (`Bc`) where `M`
/// is the number of grid cells; child ids fall out of `rank1` over the
/// concatenated bitmaps. Deeper levels are serialized as byte sequences
/// (varint-coded child lists). The paper's `Bl` bitmap (leaf-ness) is kept
/// per *node* (`has_leaf`) rather than per (node, cell) — equivalent
/// information, one bit per node cheaper.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FrozenTrie {
    n_nodes: usize,
    /// Nodes `0..n_dense` are bitmap-encoded (a BFS prefix).
    n_dense: usize,
    /// Bitmap width: number of grid cells.
    m_cells: usize,
    /// Concatenated `Bc` bitmaps of the dense nodes.
    bc: RankSelect,
    /// Byte offsets of each sparse node's child list in `sparse_bytes`.
    sparse_offsets: Vec<u32>,
    /// Varint-coded child lists of the sparse nodes.
    sparse_bytes: Vec<u8>,
    /// One bit per node: does a reference trajectory end here?
    has_leaf: RankSelect,
    /// Leaf payloads, indexed by `has_leaf.rank1(node)`.
    leaves: Vec<LeafPayload>,
    /// Per-node pivot distance intervals, `np` per node (flattened).
    hr: Vec<(f64, f64)>,
    np: usize,
}

impl FrozenTrie {
    /// Freezes a pointer trie into the succinct layout.
    pub fn from_build(build: &BuildTrie, grid: &Grid, cfg: &RpTrieConfig) -> Self {
        let m_cells = (grid.cells_per_side() as u64 * grid.cells_per_side() as u64) as usize;
        // A dense level costs M bits per node; refuse pathological widths.
        const MAX_DENSE_CELLS: usize = 1 << 16;
        let dense_levels = if m_cells > MAX_DENSE_CELLS { 0 } else { cfg.dense_levels };

        // BFS order with per-node depth.
        let mut bfs: Vec<u32> = Vec::with_capacity(build.node_count());
        let mut depth: Vec<u8> = Vec::with_capacity(build.node_count());
        bfs.push(build.root());
        depth.push(0);
        let mut head = 0;
        while head < bfs.len() {
            let id = bfs[head];
            let d = depth[head];
            head += 1;
            for &c in build.children_of(id) {
                bfs.push(c);
                depth.push(d.saturating_add(1));
            }
        }
        let n_nodes = bfs.len();
        // old arena id -> new BFS id
        let mut remap = vec![0u32; n_nodes];
        for (new_id, &old) in bfs.iter().enumerate() {
            remap[old as usize] = new_id as u32;
        }
        let n_dense = depth.iter().filter(|&&d| d < dense_levels).count();

        // Dense bitmaps.
        let mut bc = BitVec::zeros(n_dense * m_cells);
        for (new_id, &old) in bfs.iter().enumerate().take(n_dense) {
            for &c in build.children_of(old) {
                let label = build.label(c) as usize;
                debug_assert!(label < m_cells);
                bc.set(new_id * m_cells + label, true);
            }
        }

        // Sparse byte lists.
        let mut sparse_offsets = Vec::with_capacity(n_nodes - n_dense + 1);
        let mut sparse_bytes: Vec<u8> = Vec::new();
        sparse_offsets.push(0);
        for &old in bfs.iter().skip(n_dense) {
            let children = build.children_of(old);
            varint::write_u64(&mut sparse_bytes, children.len() as u64);
            if !children.is_empty() {
                // children are contiguous in BFS order (per-parent blocks)
                let first = remap[children[0] as usize];
                debug_assert!(children
                    .iter()
                    .enumerate()
                    .all(|(i, &c)| remap[c as usize] == first + i as u32));
                varint::write_u64(&mut sparse_bytes, u64::from(first));
                // delta-coded, strictly increasing labels
                let mut prev = 0u64;
                for (i, &c) in children.iter().enumerate() {
                    let label = build.label(c);
                    let delta = if i == 0 { label } else { label - prev - 1 };
                    varint::write_u64(&mut sparse_bytes, delta);
                    prev = label;
                }
            }
            sparse_offsets.push(sparse_bytes.len() as u32);
        }

        // Leaves + HR.
        let mut has_leaf = BitVec::zeros(n_nodes);
        let mut leaves = Vec::new();
        let np = build.np();
        let mut hr = Vec::with_capacity(if np > 0 { n_nodes * np } else { 0 });
        for (new_id, &old) in bfs.iter().enumerate() {
            if let Some((members, summaries, dmax, nmin)) = build.leaf_of(old) {
                has_leaf.set(new_id, true);
                leaves.push(LeafPayload {
                    members: members.to_vec(),
                    summaries: summaries.to_vec(),
                    dmax,
                    nmin,
                });
            }
            if np > 0 {
                hr.extend_from_slice(build.hr_of(old));
            }
        }

        FrozenTrie {
            n_nodes,
            n_dense,
            m_cells,
            bc: RankSelect::new(bc),
            sparse_offsets,
            sparse_bytes,
            has_leaf: RankSelect::new(has_leaf),
            leaves,
            hr,
            np,
        }
    }

    /// Total number of nodes (root included).
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// Number of bitmap-encoded (upper level) nodes.
    pub fn dense_count(&self) -> usize {
        self.n_dense
    }

    /// Number of pivots per `HR` entry.
    pub fn np(&self) -> usize {
        self.np
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        0
    }

    /// Appends `(label, child)` pairs of `node` to `out` in ascending label
    /// order.
    pub fn children_into(&self, node: NodeId, out: &mut Vec<(ZValue, NodeId)>) {
        let n = node as usize;
        if n < self.n_dense {
            let start_bit = n * self.m_cells;
            // Base rank gives the BFS id of this node's first child.
            let mut child = 1 + self.bc.rank1(start_bit) as u32;
            let words = self.bc.bits().as_words();
            let mut bit = start_bit;
            let end_bit = start_bit + self.m_cells;
            while bit < end_bit {
                let w = bit / 64;
                let mut word = words[w];
                // mask off bits below `bit` and at/after `end_bit`
                word &= !0u64 << (bit % 64);
                if (w + 1) * 64 > end_bit {
                    let keep = end_bit - w * 64;
                    if keep < 64 {
                        word &= (1u64 << keep) - 1;
                    }
                }
                while word != 0 {
                    let tz = word.trailing_zeros() as usize;
                    let pos = w * 64 + tz;
                    out.push(((pos - start_bit) as ZValue, child));
                    child += 1;
                    word &= word - 1;
                }
                bit = (w + 1) * 64;
            }
        } else {
            let sidx = n - self.n_dense;
            let range =
                self.sparse_offsets[sidx] as usize..self.sparse_offsets[sidx + 1] as usize;
            let mut buf = &self.sparse_bytes[range];
            let count = varint::read_u64(&mut buf) as usize;
            if count == 0 {
                return;
            }
            let first = varint::read_u64(&mut buf) as u32;
            let mut label = 0u64;
            for i in 0..count {
                let delta = varint::read_u64(&mut buf);
                label = if i == 0 { delta } else { label + delta + 1 };
                out.push((label, first + i as u32));
            }
        }
    }

    /// Convenience wrapper over [`FrozenTrie::children_into`].
    pub fn children(&self, node: NodeId) -> Vec<(ZValue, NodeId)> {
        let mut out = Vec::new();
        self.children_into(node, &mut out);
        out
    }

    /// The leaf payload ending at `node`, if any.
    pub fn leaf(&self, node: NodeId) -> Option<&LeafPayload> {
        if self.has_leaf.bits().get(node as usize) {
            Some(&self.leaves[self.has_leaf.rank1(node as usize)])
        } else {
            None
        }
    }

    /// The node's pivot-distance intervals (empty when pivots are
    /// disabled).
    pub fn hr(&self, node: NodeId) -> &[(f64, f64)] {
        if self.np == 0 {
            &[]
        } else {
            let s = node as usize * self.np;
            &self.hr[s..s + self.np]
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Approximate heap size in bytes — the paper's index-size (IS) metric
    /// for the local index.
    pub fn mem_bytes(&self) -> usize {
        self.bc.mem_bytes()
            + self.sparse_offsets.capacity() * 4
            + self.sparse_bytes.capacity()
            + self.has_leaf.mem_bytes()
            + self
                .leaves
                .iter()
                .map(|l| {
                    std::mem::size_of::<LeafPayload>()
                        + l.members.capacity() * 4
                        + l.summaries.capacity() * std::mem::size_of::<TrajSummary>()
                })
                .sum::<usize>()
            + self.hr.capacity() * 16
    }
}
