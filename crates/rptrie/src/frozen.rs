use crate::builder::BuildTrie;
use crate::RpTrieConfig;
use repose_distance::TrajSummary;
use repose_succinct::{varint, BitVec, FlatVec, RankSelect};
use repose_zorder::{Grid, ZValue};

/// Index of a node in the frozen trie (BFS order, root = 0).
pub type NodeId = u32;

/// A borrowed view of one leaf's payload: the trajectories whose reference
/// trajectory ends at that node.
///
/// Leaves are stored structure-of-arrays inside [`FrozenTrie`] (one flat
/// table per field across all leaves), so a leaf "value" is just slices
/// into those tables — equally cheap over an owned trie and over one
/// mapped from an archive.
#[derive(Debug, Clone, Copy)]
pub struct LeafRef<'a> {
    /// Indices into the partition's trajectory slice (`Tid` in Fig. 2).
    pub members: &'a [u32],
    /// Per-member prefilter summaries (parallel to `members`), built once
    /// at construction so verification sites get an O(1) lower bound per
    /// candidate instead of re-walking both trajectories.
    pub summaries: &'a [TrajSummary],
    /// `Dmax`: maximum distance from the members to the leaf's reference
    /// trajectory under the index measure.
    pub dmax: f64,
    /// Shortest member trajectory length (tightens the LCSS leaf bound).
    pub nmin: u32,
}

/// The immutable, succinct physical form of an RP-Trie (Section III-B,
/// "Succinct trie structure").
///
/// Nodes live in BFS order. The upper `dense_levels` levels use the paper's
/// bitmap layout: per dense node, an `M`-bit child bitmap (`Bc`) where `M`
/// is the number of grid cells; child ids fall out of `rank1` over the
/// concatenated bitmaps. Deeper levels are serialized as byte sequences
/// (varint-coded child lists). The paper's `Bl` bitmap (leaf-ness) is kept
/// per *node* (`has_leaf`) rather than per (node, cell) — equivalent
/// information, one bit per node cheaper.
///
/// Every array field is a [`FlatVec`], and leaves are flattened
/// structure-of-arrays behind a prefix-offset table, so the whole trie is
/// either owned (just built) or a set of zero-copy views into one mapped
/// archive buffer ([`FrozenTrie::from_parts`]). The rank directories are
/// rebuilt at attach time from the persisted bitmaps — a single popcount
/// pass, negligible next to the data they index.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FrozenTrie {
    n_nodes: usize,
    /// Nodes `0..n_dense` are bitmap-encoded (a BFS prefix).
    n_dense: usize,
    /// Bitmap width: number of grid cells.
    m_cells: usize,
    /// Concatenated `Bc` bitmaps of the dense nodes.
    bc: RankSelect,
    /// Byte offsets of each sparse node's child list in `sparse_bytes`.
    sparse_offsets: FlatVec<u32>,
    /// Varint-coded child lists of the sparse nodes.
    sparse_bytes: FlatVec<u8>,
    /// One bit per node: does a reference trajectory end here?
    has_leaf: RankSelect,
    /// Prefix offsets: leaf `i` owns `leaf_members[leaf_offsets[i]..
    /// leaf_offsets[i + 1]]` (and the parallel `leaf_summaries` range).
    /// Always `leaf_count + 1` entries.
    leaf_offsets: FlatVec<u64>,
    /// All leaves' member slots, back to back in leaf order.
    leaf_members: FlatVec<u32>,
    /// All leaves' member summaries, parallel to `leaf_members`.
    leaf_summaries: FlatVec<TrajSummary>,
    /// Per-leaf `Dmax`.
    leaf_dmax: FlatVec<f64>,
    /// Per-leaf shortest member length.
    leaf_nmin: FlatVec<u32>,
    /// Per-node pivot distance intervals: `np` `(lo, hi)` pairs per node,
    /// stored interleaved (`lo, hi, lo, hi, …` — `2 * np` floats per node;
    /// tuples have no defined layout, so the flat form is what archives).
    hr: FlatVec<f64>,
    np: usize,
}

impl FrozenTrie {
    /// Freezes a pointer trie into the succinct layout.
    pub fn from_build(build: &BuildTrie, grid: &Grid, cfg: &RpTrieConfig) -> Self {
        let m_cells = (grid.cells_per_side() as u64 * grid.cells_per_side() as u64) as usize;
        // A dense level costs M bits per node; refuse pathological widths.
        const MAX_DENSE_CELLS: usize = 1 << 16;
        let dense_levels = if m_cells > MAX_DENSE_CELLS { 0 } else { cfg.dense_levels };

        // BFS order with per-node depth.
        let mut bfs: Vec<u32> = Vec::with_capacity(build.node_count());
        let mut depth: Vec<u8> = Vec::with_capacity(build.node_count());
        bfs.push(build.root());
        depth.push(0);
        let mut head = 0;
        while head < bfs.len() {
            let id = bfs[head];
            let d = depth[head];
            head += 1;
            for &c in build.children_of(id) {
                bfs.push(c);
                depth.push(d.saturating_add(1));
            }
        }
        let n_nodes = bfs.len();
        // old arena id -> new BFS id
        let mut remap = vec![0u32; n_nodes];
        for (new_id, &old) in bfs.iter().enumerate() {
            remap[old as usize] = new_id as u32;
        }
        let n_dense = depth.iter().filter(|&&d| d < dense_levels).count();

        // Dense bitmaps.
        let mut bc = BitVec::zeros(n_dense * m_cells);
        for (new_id, &old) in bfs.iter().enumerate().take(n_dense) {
            for &c in build.children_of(old) {
                let label = build.label(c) as usize;
                debug_assert!(label < m_cells);
                bc.set(new_id * m_cells + label, true);
            }
        }

        // Sparse byte lists.
        let mut sparse_offsets = Vec::with_capacity(n_nodes - n_dense + 1);
        let mut sparse_bytes: Vec<u8> = Vec::new();
        sparse_offsets.push(0);
        for &old in bfs.iter().skip(n_dense) {
            let children = build.children_of(old);
            varint::write_u64(&mut sparse_bytes, children.len() as u64);
            if !children.is_empty() {
                // children are contiguous in BFS order (per-parent blocks)
                let first = remap[children[0] as usize];
                debug_assert!(children
                    .iter()
                    .enumerate()
                    .all(|(i, &c)| remap[c as usize] == first + i as u32));
                varint::write_u64(&mut sparse_bytes, u64::from(first));
                // delta-coded, strictly increasing labels
                let mut prev = 0u64;
                for (i, &c) in children.iter().enumerate() {
                    let label = build.label(c);
                    let delta = if i == 0 { label } else { label - prev - 1 };
                    varint::write_u64(&mut sparse_bytes, delta);
                    prev = label;
                }
            }
            sparse_offsets.push(sparse_bytes.len() as u32);
        }

        // Leaves (structure-of-arrays) + HR.
        let mut has_leaf = BitVec::zeros(n_nodes);
        let mut leaf_offsets: Vec<u64> = vec![0];
        let mut leaf_members: Vec<u32> = Vec::new();
        let mut leaf_summaries: Vec<TrajSummary> = Vec::new();
        let mut leaf_dmax: Vec<f64> = Vec::new();
        let mut leaf_nmin: Vec<u32> = Vec::new();
        let np = build.np();
        let mut hr = Vec::with_capacity(if np > 0 { n_nodes * np * 2 } else { 0 });
        for (new_id, &old) in bfs.iter().enumerate() {
            if let Some((members, summaries, dmax, nmin)) = build.leaf_of(old) {
                has_leaf.set(new_id, true);
                leaf_members.extend_from_slice(members);
                leaf_summaries.extend_from_slice(summaries);
                leaf_offsets.push(leaf_members.len() as u64);
                leaf_dmax.push(dmax);
                leaf_nmin.push(nmin);
            }
            if np > 0 {
                for &(lo, hi) in build.hr_of(old) {
                    hr.push(lo);
                    hr.push(hi);
                }
            }
        }

        FrozenTrie {
            n_nodes,
            n_dense,
            m_cells,
            bc: RankSelect::new(bc),
            sparse_offsets: FlatVec::Owned(sparse_offsets),
            sparse_bytes: FlatVec::Owned(sparse_bytes),
            has_leaf: RankSelect::new(has_leaf),
            leaf_offsets: FlatVec::Owned(leaf_offsets),
            leaf_members: FlatVec::Owned(leaf_members),
            leaf_summaries: FlatVec::Owned(leaf_summaries),
            leaf_dmax: FlatVec::Owned(leaf_dmax),
            leaf_nmin: FlatVec::Owned(leaf_nmin),
            hr: FlatVec::Owned(hr),
            np,
        }
    }

    /// Reassembles a frozen trie from its persisted parts (typically
    /// zero-copy views into a mapped archive), revalidating every
    /// structural invariant the accessors rely on and rebuilding the rank
    /// directories.
    ///
    /// Cross-field corruption that per-section checksums cannot catch
    /// (sections individually intact but mutually inconsistent lengths)
    /// fails here with a diagnostic, never a later panic or a wrong
    /// answer.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(parts: FrozenTrieParts) -> Result<Self, String> {
        let FrozenTrieParts {
            n_nodes,
            n_dense,
            m_cells,
            bc_bits,
            sparse_offsets,
            sparse_bytes,
            has_leaf_bits,
            leaf_offsets,
            leaf_members,
            leaf_summaries,
            leaf_dmax,
            leaf_nmin,
            hr,
            np,
        } = parts;
        if n_dense > n_nodes {
            return Err(format!("n_dense {n_dense} exceeds n_nodes {n_nodes}"));
        }
        if bc_bits.len() != n_dense * m_cells {
            return Err(format!(
                "bc bitmap has {} bits, want n_dense {n_dense} x m_cells {m_cells}",
                bc_bits.len()
            ));
        }
        if has_leaf_bits.len() != n_nodes {
            return Err(format!(
                "has_leaf bitmap has {} bits for {n_nodes} nodes",
                has_leaf_bits.len()
            ));
        }
        if sparse_offsets.len() != n_nodes - n_dense + 1 {
            return Err(format!(
                "sparse_offsets has {} entries, want {}",
                sparse_offsets.len(),
                n_nodes - n_dense + 1
            ));
        }
        if sparse_offsets.first() != Some(&0)
            || sparse_offsets.last().copied() != Some(sparse_bytes.len() as u32)
            || sparse_offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err("sparse_offsets is not a prefix table of sparse_bytes".into());
        }
        let leaf_count = has_leaf_bits.count_ones();
        if leaf_offsets.len() != leaf_count + 1
            || leaf_dmax.len() != leaf_count
            || leaf_nmin.len() != leaf_count
        {
            return Err(format!(
                "leaf tables sized {}/{}/{} for {leaf_count} leaves",
                leaf_offsets.len(),
                leaf_dmax.len(),
                leaf_nmin.len()
            ));
        }
        if leaf_summaries.len() != leaf_members.len() {
            return Err(format!(
                "{} summaries for {} members",
                leaf_summaries.len(),
                leaf_members.len()
            ));
        }
        if leaf_offsets.first() != Some(&0)
            || leaf_offsets.last().copied() != Some(leaf_members.len() as u64)
            || leaf_offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err("leaf_offsets is not a prefix table of leaf_members".into());
        }
        let want_hr = if np > 0 { n_nodes * np * 2 } else { 0 };
        if hr.len() != want_hr {
            return Err(format!("hr has {} floats, want {want_hr}", hr.len()));
        }
        Ok(FrozenTrie {
            n_nodes,
            n_dense,
            m_cells,
            bc: RankSelect::new(bc_bits),
            sparse_offsets,
            sparse_bytes,
            has_leaf: RankSelect::new(has_leaf_bits),
            leaf_offsets,
            leaf_members,
            leaf_summaries,
            leaf_dmax,
            leaf_nmin,
            hr,
            np,
        })
    }

    /// Decomposes the trie into the parts [`FrozenTrie::from_parts`]
    /// accepts — the archive writer's view. Cheap (bitvec clones are
    /// copy-on-write views or word vectors; everything else is borrowed
    /// into `FlatVec` clones).
    pub fn to_parts(&self) -> FrozenTrieParts {
        FrozenTrieParts {
            n_nodes: self.n_nodes,
            n_dense: self.n_dense,
            m_cells: self.m_cells,
            bc_bits: self.bc.bits().clone(),
            sparse_offsets: self.sparse_offsets.clone(),
            sparse_bytes: self.sparse_bytes.clone(),
            has_leaf_bits: self.has_leaf.bits().clone(),
            leaf_offsets: self.leaf_offsets.clone(),
            leaf_members: self.leaf_members.clone(),
            leaf_summaries: self.leaf_summaries.clone(),
            leaf_dmax: self.leaf_dmax.clone(),
            leaf_nmin: self.leaf_nmin.clone(),
            hr: self.hr.clone(),
            np: self.np,
        }
    }

    /// Total number of nodes (root included).
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// Number of bitmap-encoded (upper level) nodes.
    pub fn dense_count(&self) -> usize {
        self.n_dense
    }

    /// Number of pivots per `HR` entry.
    pub fn np(&self) -> usize {
        self.np
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        0
    }

    /// Appends `(label, child)` pairs of `node` to `out` in ascending label
    /// order.
    pub fn children_into(&self, node: NodeId, out: &mut Vec<(ZValue, NodeId)>) {
        let n = node as usize;
        if n < self.n_dense {
            let start_bit = n * self.m_cells;
            // Base rank gives the BFS id of this node's first child.
            let mut child = 1 + self.bc.rank1(start_bit) as u32;
            let words = self.bc.bits().as_words();
            let mut bit = start_bit;
            let end_bit = start_bit + self.m_cells;
            while bit < end_bit {
                let w = bit / 64;
                let mut word = words[w];
                // mask off bits below `bit` and at/after `end_bit`
                word &= !0u64 << (bit % 64);
                if (w + 1) * 64 > end_bit {
                    let keep = end_bit - w * 64;
                    if keep < 64 {
                        word &= (1u64 << keep) - 1;
                    }
                }
                while word != 0 {
                    let tz = word.trailing_zeros() as usize;
                    let pos = w * 64 + tz;
                    out.push(((pos - start_bit) as ZValue, child));
                    child += 1;
                    word &= word - 1;
                }
                bit = (w + 1) * 64;
            }
        } else {
            let sidx = n - self.n_dense;
            let range =
                self.sparse_offsets[sidx] as usize..self.sparse_offsets[sidx + 1] as usize;
            let mut buf = &self.sparse_bytes[range];
            let count = varint::read_u64(&mut buf) as usize;
            if count == 0 {
                return;
            }
            let first = varint::read_u64(&mut buf) as u32;
            let mut label = 0u64;
            for i in 0..count {
                let delta = varint::read_u64(&mut buf);
                label = if i == 0 { delta } else { label + delta + 1 };
                out.push((label, first + i as u32));
            }
        }
    }

    /// Convenience wrapper over [`FrozenTrie::children_into`].
    pub fn children(&self, node: NodeId) -> Vec<(ZValue, NodeId)> {
        let mut out = Vec::new();
        self.children_into(node, &mut out);
        out
    }

    /// The leaf payload ending at `node`, if any.
    pub fn leaf(&self, node: NodeId) -> Option<LeafRef<'_>> {
        if self.has_leaf.bits().get(node as usize) {
            let i = self.has_leaf.rank1(node as usize);
            let range = self.leaf_offsets[i] as usize..self.leaf_offsets[i + 1] as usize;
            Some(LeafRef {
                members: &self.leaf_members[range.clone()],
                summaries: &self.leaf_summaries[range],
                dmax: self.leaf_dmax[i],
                nmin: self.leaf_nmin[i],
            })
        } else {
            None
        }
    }

    /// The node's pivot-distance intervals as interleaved `lo, hi` floats
    /// (`2 * np` entries; empty when pivots are disabled).
    pub fn hr(&self, node: NodeId) -> &[f64] {
        if self.np == 0 {
            &[]
        } else {
            let s = node as usize * self.np * 2;
            &self.hr[s..s + self.np * 2]
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaf_dmax.len()
    }

    /// Approximate heap size in bytes — the paper's index-size (IS) metric
    /// for the local index. Views into a mapped archive count as 0 (the
    /// map is accounted once by its owner).
    pub fn mem_bytes(&self) -> usize {
        self.bc.mem_bytes()
            + self.sparse_offsets.mem_bytes()
            + self.sparse_bytes.mem_bytes()
            + self.has_leaf.mem_bytes()
            + self.leaf_offsets.mem_bytes()
            + self.leaf_members.mem_bytes()
            + self.leaf_summaries.mem_bytes()
            + self.leaf_dmax.mem_bytes()
            + self.leaf_nmin.mem_bytes()
            + self.hr.mem_bytes()
    }
}

/// The exploded form of a [`FrozenTrie`] — what an archive stores per
/// partition and what [`FrozenTrie::from_parts`] revalidates.
#[derive(Debug, Clone)]
pub struct FrozenTrieParts {
    /// Total node count.
    pub n_nodes: usize,
    /// Bitmap-encoded BFS-prefix length.
    pub n_dense: usize,
    /// Child-bitmap width (grid cells).
    pub m_cells: usize,
    /// Concatenated dense child bitmaps (`n_dense * m_cells` bits).
    pub bc_bits: BitVec,
    /// Sparse child-list offsets (`n_nodes - n_dense + 1` entries).
    pub sparse_offsets: FlatVec<u32>,
    /// Varint-coded sparse child lists.
    pub sparse_bytes: FlatVec<u8>,
    /// Leaf-ness bitmap (`n_nodes` bits).
    pub has_leaf_bits: BitVec,
    /// Leaf member-range prefix table (`leaf_count + 1` entries).
    pub leaf_offsets: FlatVec<u64>,
    /// Concatenated leaf member slots.
    pub leaf_members: FlatVec<u32>,
    /// Concatenated member summaries (parallel to `leaf_members`).
    pub leaf_summaries: FlatVec<TrajSummary>,
    /// Per-leaf `Dmax`.
    pub leaf_dmax: FlatVec<f64>,
    /// Per-leaf shortest member length.
    pub leaf_nmin: FlatVec<u32>,
    /// Interleaved per-node pivot intervals (`2 * np` floats per node).
    pub hr: FlatVec<f64>,
    /// Pivot count per node.
    pub np: usize,
}
