//! The Reference Point Trie (RP-Trie) — the paper's core index
//! (Sections III and IV).
//!
//! Trajectories are discretized into reference trajectories (sequences of
//! grid-cell z-values); the trie indexes those sequences. Query processing
//! traverses the trie best-first, ordered by incrementally-computed lower
//! bounds:
//!
//! * `LBo` — one-side lower bound on internal nodes (Definition 6),
//! * `LBt` — two-side lower bound on leaf nodes (Definition 7),
//! * `LBp` — pivot-based lower bound for metric measures (Section IV-D).
//!
//! The physical layout is the paper's succinct two-layer structure: bitmap
//! (LOUDS-dense) upper levels and byte-serialized lower levels. For the
//! order-independent Hausdorff measure, the builder applies the z-value
//! re-arrangement optimization (Section III-C): a greedy hitting-set
//! construction that maximizes prefix sharing.
//!
//! ```
//! use repose_model::{Mbr, Point, TrajStore};
//! use repose_rptrie::{RpTrie, RpTrieConfig};
//! use repose_distance::Measure;
//! use repose_zorder::Grid;
//!
//! // The flat point arena queries read contiguous memory from.
//! let mut store = TrajStore::new();
//! for i in 0..30u64 {
//!     let y = (i % 6) as f64;
//!     let pts: Vec<Point> = (0..5).map(|j| Point::new(j as f64, y)).collect();
//!     store.push(i, &pts);
//! }
//! let grid = Grid::new(Mbr::new(Point::new(0.0, 0.0), Point::new(8.0, 8.0)), 3);
//! let trie = RpTrie::build(&store, grid, RpTrieConfig::for_measure(Measure::Hausdorff));
//!
//! let query = vec![Point::new(0.0, 0.3), Point::new(4.0, 0.3)];
//! let result = trie.top_k(&store, &query, 3);
//! assert_eq!(result.hits[0].id, 0); // the y = 0 row is nearest
//! // Best-first search visited the trie instead of scanning everything.
//! assert!(result.stats.exact_computations < store.len());
//! ```

#![warn(missing_docs)]

mod bounds;
mod builder;
mod config;
mod frozen;
#[cfg(test)]
mod frozen_tests;
mod pivot;
mod search;
mod shared;

pub use builder::{BuildTrie, ZSeqPolicy};
pub use config::RpTrieConfig;
pub use frozen::{FrozenTrie, FrozenTrieParts, LeafRef, NodeId};
pub use pivot::{select_pivots, PivotSet};
pub use search::{SearchResult, SearchStats};
pub use shared::SharedTopK;

use repose_distance::{Measure, MeasureParams, ThresholdSource};
use repose_model::{Point, TrajId, TrajStore};
use repose_zorder::Grid;

/// A built RP-Trie over one partition of trajectories.
///
/// The trie does not own the trajectories; queries must be given the same
/// [`TrajStore`] the index was built from (this mirrors the paper's
/// `RpTraj` packaging of `(trajectory array, RP-Trie)` inside one RDD
/// element — the owning pair lives in the `repose` crate). The store is a
/// flat point arena, so leaf verification reads contiguous memory instead
/// of chasing per-trajectory heap islands.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RpTrie {
    frozen: FrozenTrie,
    grid: Grid,
    config: RpTrieConfig,
    pivots: PivotSet,
    built_over: usize,
}

impl RpTrie {
    /// Builds an RP-Trie over `trajs` using `grid` for discretization.
    ///
    /// Policy decisions made from `config.measure` (Section VI):
    /// * Hausdorff — full z-value dedup + greedy re-arrangement (when
    ///   `config.optimize`), pivots enabled;
    /// * Frechet — consecutive dedup, pivots enabled;
    /// * ERP — raw sequence, pivots enabled;
    /// * DTW / LCSS / EDR — basic trie, no pivots.
    pub fn build(store: &TrajStore, grid: Grid, config: RpTrieConfig) -> Self {
        let pivots = if config.measure.is_metric() && config.np > 0 {
            select_pivots(store, &config)
        } else {
            PivotSet::empty()
        };
        let build = BuildTrie::construct(store, &grid, &config, &pivots);
        let frozen = build.freeze(&grid, &config);
        RpTrie { frozen, grid, config, pivots, built_over: store.len() }
    }

    /// Reassembles a trie from prebuilt parts — the archive attach path,
    /// which must not re-run construction. `built_over` is the length of
    /// the [`TrajStore`] the frozen trie's member slots index into; every
    /// query asserts its store against it.
    pub fn from_parts(
        frozen: FrozenTrie,
        grid: Grid,
        config: RpTrieConfig,
        pivots: PivotSet,
        built_over: usize,
    ) -> Self {
        RpTrie { frozen, grid, config, pivots, built_over }
    }

    /// The store length this trie was built over (see
    /// [`RpTrie::from_parts`]).
    pub fn built_over(&self) -> usize {
        self.built_over
    }

    /// Runs a top-k query (Algorithm 2). `store` must be the arena the
    /// trie was built over.
    pub fn top_k(&self, store: &TrajStore, query: &[Point], k: usize) -> SearchResult {
        assert_eq!(
            store.len(),
            self.built_over,
            "query must use the trajectory store the index was built over"
        );
        search::top_k(self, store, query, k)
    }

    /// Like [`RpTrie::top_k`] but only keeps results strictly better than
    /// a *static* `threshold` — the fixed-bound form of the live
    /// [`RpTrie::top_k_shared`], for callers that hold a precomputed upper
    /// bound on the k-th distance (e.g. a completed neighbour search).
    pub fn top_k_bounded(
        &self,
        store: &TrajStore,
        query: &[Point],
        k: usize,
        threshold: f64,
    ) -> SearchResult {
        assert_eq!(store.len(), self.built_over);
        search::top_k_bounded(self, store, query, k, threshold)
    }

    /// Like [`RpTrie::top_k`] but restricted to trajectory ids accepted
    /// by `filter` — the hook for attribute predicates such as the
    /// temporal windows of `repose::temporal` (the paper's Section IX
    /// future work).
    ///
    /// Pruning stays sound under any filter: bounds hold for supersets of
    /// the qualifying trajectories, and `dk` only tightens from accepted
    /// hits.
    pub fn top_k_where(
        &self,
        store: &TrajStore,
        query: &[Point],
        k: usize,
        filter: &(dyn Fn(TrajId) -> bool + Sync),
    ) -> SearchResult {
        assert_eq!(store.len(), self.built_over);
        search::top_k_filtered(self, store, query, k, f64::INFINITY, Some(filter), &[], None)
    }

    /// Top-k over the union of the trie's trajectories and a set of
    /// pre-scored external candidates (`seeds`) — the serving layer's
    /// trie + delta-buffer search.
    ///
    /// The seeds join the result heap before the trie descent, so the
    /// trie search and the delta scan share one pruning threshold: with
    /// `k` good seeds the trie is only explored where it can still beat
    /// them. An optional `filter` restricts which *indexed* trajectories
    /// qualify (the serving layer passes its tombstone check); seeds are
    /// taken as-is, and a seed *shadows* any indexed trajectory with the
    /// same id (the caller's version wins — no id appears twice). Exact:
    /// the result equals brute force over
    /// `{accepted, unshadowed indexed trajectories} ∪ {seeds}` up to tie
    /// resolution.
    pub fn top_k_seeded(
        &self,
        store: &TrajStore,
        query: &[Point],
        k: usize,
        seeds: &[Hit],
        filter: Option<&(dyn Fn(TrajId) -> bool + Sync)>,
    ) -> SearchResult {
        assert_eq!(store.len(), self.built_over);
        search::top_k_filtered(self, store, query, k, f64::INFINITY, filter, seeds, None)
    }

    /// The shared-threshold local search: like [`RpTrie::top_k_seeded`],
    /// but additionally wired to a live cross-search threshold collector
    /// (normally a [`SharedTopK`] all partitions of one query share).
    ///
    /// The search re-reads `shared`'s bound at every pruning decision and
    /// publishes every accepted exact distance back, so concurrently
    /// executing partitions tighten each other mid-flight. Exactness is
    /// unchanged — the collector's bound always over-approximates the
    /// global k-th distance (see the `shared` module docs for the
    /// argument), and this search's hits merged with its peers' equal the
    /// independent searches' merge up to tie resolution.
    pub fn top_k_shared(
        &self,
        store: &TrajStore,
        query: &[Point],
        k: usize,
        seeds: &[Hit],
        filter: Option<&(dyn Fn(TrajId) -> bool + Sync)>,
        shared: &dyn ThresholdSource,
    ) -> SearchResult {
        assert_eq!(store.len(), self.built_over);
        search::top_k_filtered(self, store, query, k, f64::INFINITY, filter, seeds, Some(shared))
    }

    /// A cheap lower bound on the distance from `query` to *every*
    /// trajectory indexed by this trie: the minimum one-cell `LBo` over
    /// the root's children (no pivot distances are computed, so this costs
    /// `O(children × |query|)` and no exact kernel invocations).
    ///
    /// `INFINITY` for an empty trie. Used by the distributed layer to pick
    /// the most promising seed partition for two-phase execution; for
    /// measures without a sound internal bound (LCSS) this returns `0.0`
    /// and the caller falls back to its default ordering.
    pub fn root_bound(&self, query: &[Point]) -> f64 {
        if query.is_empty() {
            return 0.0;
        }
        let kids = self.frozen.children(self.frozen.root());
        if kids.is_empty() {
            return f64::INFINITY;
        }
        let base = bounds::BoundState::new(self.config.measure, &self.config.params, query);
        let mut best = f64::INFINITY;
        for (z, _) in kids {
            let mut st = base.clone();
            st.push(query, &self.grid, z, &self.config.params);
            best = best.min(st.lbo(&self.grid));
        }
        best
    }

    /// The frozen physical trie.
    pub fn frozen(&self) -> &FrozenTrie {
        &self.frozen
    }

    /// The discretization grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The build configuration.
    pub fn config(&self) -> &RpTrieConfig {
        &self.config
    }

    /// The selected pivot trajectories (empty for non-metric measures).
    pub fn pivots(&self) -> &PivotSet {
        &self.pivots
    }

    /// Number of trie nodes (Fig. 7's "# of trie nodes").
    pub fn node_count(&self) -> usize {
        self.frozen.node_count()
    }

    /// Approximate index size in bytes (the paper's IS metric).
    pub fn mem_bytes(&self) -> usize {
        self.frozen.mem_bytes() + self.pivots.mem_bytes()
    }

    /// The measure this index serves.
    pub fn measure(&self) -> Measure {
        self.config.measure
    }

    /// The measure parameters this index serves.
    pub fn params(&self) -> MeasureParams {
        self.config.params
    }

    /// Exact distance from `query` to trajectory points under this index's
    /// measure/params.
    pub fn exact_distance(&self, query: &[Point], t: &[Point]) -> f64 {
        self.config.params.distance(self.config.measure, query, t)
    }
}

/// A scored search hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Trajectory id.
    pub id: TrajId,
    /// Distance to the query under the index's measure.
    pub dist: f64,
}

impl Hit {
    /// The canonical result ordering used everywhere hits are merged:
    /// ascending distance, ties broken by ascending id. Pass to `sort_by`.
    pub fn cmp_by_dist_then_id(a: &Hit, b: &Hit) -> std::cmp::Ordering {
        a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id))
    }
}
