//! A Sort-Tile-Recursive (STR) bulk-loaded R-tree.
//!
//! Substrate for the DFT baseline (Xie et al., PVLDB'17), which indexes
//! trajectory *segments* in an R-tree per partition and prunes candidate
//! segments by MBR distance. Kept generic over the payload type so tests
//! and other baselines can reuse it.
//!
//! ```
//! use repose_model::{Mbr, Point};
//! use repose_rtree::RTree;
//!
//! // Index unit squares at (i, i) carrying their index as payload.
//! let items: Vec<(Mbr, usize)> = (0..100)
//!     .map(|i| {
//!         let lo = Point::new(i as f64, i as f64);
//!         (Mbr::new(lo, Point::new(lo.x + 1.0, lo.y + 1.0)), i)
//!     })
//!     .collect();
//! let tree = RTree::bulk_load(items);
//! assert_eq!(tree.len(), 100);
//!
//! // Range query: squares 9..=11 intersect [9.5, 11.5]^2.
//! let mut hit: Vec<usize> = tree
//!     .query_intersects(&Mbr::new(Point::new(9.5, 9.5), Point::new(11.5, 11.5)))
//!     .into_iter()
//!     .copied()
//!     .collect();
//! hit.sort_unstable();
//! assert_eq!(hit, vec![9, 10, 11]);
//! ```

#![warn(missing_docs)]

use repose_model::{Mbr, Point};

/// Maximum entries per leaf / children per inner node.
const DEFAULT_FANOUT: usize = 16;

#[derive(Debug, Clone)]
enum NodeKind {
    /// `start..end` range into `items`.
    Leaf(usize, usize),
    /// Child node ids.
    Inner(Vec<u32>),
}

#[derive(Debug, Clone)]
struct Node {
    mbr: Mbr,
    kind: NodeKind,
}

/// An immutable R-tree over `(Mbr, T)` items.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    items: Vec<(Mbr, T)>,
    nodes: Vec<Node>,
    root: u32,
    fanout: usize,
}

impl<T> RTree<T> {
    /// Bulk-loads with the default fanout.
    pub fn bulk_load(items: Vec<(Mbr, T)>) -> Self {
        Self::bulk_load_with_fanout(items, DEFAULT_FANOUT)
    }

    /// Bulk-loads with an explicit fanout (must be at least 2).
    pub fn bulk_load_with_fanout(mut items: Vec<(Mbr, T)>, fanout: usize) -> Self {
        assert!(fanout >= 2, "fanout must be at least 2");
        let mut nodes = Vec::new();
        if items.is_empty() {
            nodes.push(Node { mbr: Mbr::empty(), kind: NodeKind::Leaf(0, 0) });
            return RTree { items, nodes, root: 0, fanout };
        }

        // STR: sort by x-center, slice into vertical slabs, sort each slab
        // by y-center, chunk into leaves.
        let n = items.len();
        let n_leaves = n.div_ceil(fanout);
        let n_slabs = (n_leaves as f64).sqrt().ceil() as usize;
        let slab_size = n.div_ceil(n_slabs);
        items.sort_by(|a, b| a.0.center().x.total_cmp(&b.0.center().x));
        let mut level: Vec<u32> = Vec::with_capacity(n_leaves);
        {
            let mut start = 0;
            while start < n {
                let end = (start + slab_size).min(n);
                items[start..end].sort_by(|a, b| a.0.center().y.total_cmp(&b.0.center().y));
                let mut ls = start;
                while ls < end {
                    let le = (ls + fanout).min(end);
                    let mut mbr = Mbr::empty();
                    for (m, _) in &items[ls..le] {
                        mbr = mbr.union(m);
                    }
                    nodes.push(Node { mbr, kind: NodeKind::Leaf(ls, le) });
                    level.push((nodes.len() - 1) as u32);
                    ls = le;
                }
                start = end;
            }
        }

        // Build upper levels by chunking (children are already spatially
        // clustered by the STR order).
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(fanout));
            for chunk in level.chunks(fanout) {
                let mut mbr = Mbr::empty();
                for &c in chunk {
                    mbr = mbr.union(&nodes[c as usize].mbr);
                }
                nodes.push(Node { mbr, kind: NodeKind::Inner(chunk.to_vec()) });
                next.push((nodes.len() - 1) as u32);
            }
            level = next;
        }
        let root = level[0];
        RTree { items, nodes, root, fanout }
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The tree's bounding rectangle.
    pub fn mbr(&self) -> Mbr {
        self.nodes[self.root as usize].mbr
    }

    /// The configured fanout.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Generic pruned traversal: descends into nodes whose MBR satisfies
    /// `descend` and calls `visit` for every item whose own MBR satisfies
    /// `descend` too.
    pub fn visit<'a>(
        &'a self,
        mut descend: impl FnMut(&Mbr) -> bool,
        mut visit: impl FnMut(&'a Mbr, &'a T),
    ) {
        if self.items.is_empty() {
            return;
        }
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            if !descend(&node.mbr) {
                continue;
            }
            match &node.kind {
                NodeKind::Leaf(s, e) => {
                    for (m, t) in &self.items[*s..*e] {
                        if descend(m) {
                            visit(m, t);
                        }
                    }
                }
                NodeKind::Inner(children) => stack.extend_from_slice(children),
            }
        }
    }

    /// Items whose MBR intersects `query`.
    pub fn query_intersects(&self, query: &Mbr) -> Vec<&T> {
        let mut out = Vec::new();
        self.visit(|m| m.intersects(query), |_, t| out.push(t));
        out
    }

    /// Items whose MBR lies within distance `r` of `p`.
    pub fn query_within_dist(&self, p: Point, r: f64) -> Vec<&T> {
        let mut out = Vec::new();
        self.visit(|m| m.min_dist(p) <= r, |_, t| out.push(t));
        out
    }

    /// Approximate heap size in bytes, including payloads by `size_of`.
    pub fn mem_bytes(&self) -> usize {
        self.items.capacity() * std::mem::size_of::<(Mbr, T)>()
            + self
                .nodes
                .iter()
                .map(|n| {
                    std::mem::size_of::<Node>()
                        + match &n.kind {
                            NodeKind::Inner(c) => c.capacity() * 4,
                            NodeKind::Leaf(..) => 0,
                        }
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pt(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn grid_items(n: usize) -> Vec<(Mbr, usize)> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f64;
                let y = (i / 10) as f64;
                (Mbr::new(pt(x, y), pt(x + 0.5, y + 0.5)), i)
            })
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t: RTree<u32> = RTree::bulk_load(vec![]);
        assert!(t.is_empty());
        assert!(t.query_intersects(&Mbr::new(pt(0.0, 0.0), pt(1.0, 1.0))).is_empty());
        assert!(t.query_within_dist(pt(0.0, 0.0), 100.0).is_empty());
    }

    #[test]
    fn single_item() {
        let t = RTree::bulk_load(vec![(Mbr::from_point(pt(1.0, 1.0)), 7u32)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.query_within_dist(pt(0.0, 0.0), 2.0), vec![&7]);
        assert!(t.query_within_dist(pt(0.0, 0.0), 1.0).is_empty());
    }

    #[test]
    fn intersection_query_exact() {
        let t = RTree::bulk_load(grid_items(100));
        let q = Mbr::new(pt(2.2, 2.2), pt(4.4, 3.3));
        let mut got: Vec<usize> = t.query_intersects(&q).into_iter().copied().collect();
        got.sort_unstable();
        let mut expect: Vec<usize> = grid_items(100)
            .into_iter()
            .filter(|(m, _)| m.intersects(&q))
            .map(|(_, i)| i)
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
        assert!(!got.is_empty());
    }

    #[test]
    fn within_dist_query_exact() {
        let t = RTree::bulk_load(grid_items(100));
        let p = pt(5.0, 5.0);
        for r in [0.3, 1.0, 2.5, 20.0] {
            let mut got: Vec<usize> = t.query_within_dist(p, r).into_iter().copied().collect();
            got.sort_unstable();
            let mut expect: Vec<usize> = grid_items(100)
                .into_iter()
                .filter(|(m, _)| m.min_dist(p) <= r)
                .map(|(_, i)| i)
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "r={r}");
        }
    }

    #[test]
    fn root_mbr_covers_everything() {
        let t = RTree::bulk_load(grid_items(57));
        for (m, _) in grid_items(57) {
            assert!(t.mbr().contains_mbr(&m));
        }
    }

    #[test]
    fn small_fanout_builds_deep_tree() {
        let t = RTree::bulk_load_with_fanout(grid_items(64), 2);
        let q = Mbr::new(pt(0.0, 0.0), pt(10.0, 10.0));
        assert_eq!(t.query_intersects(&q).len(), 64);
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn fanout_one_panics() {
        RTree::bulk_load_with_fanout(grid_items(4), 1);
    }

    proptest! {
        #[test]
        fn query_matches_scan(
            pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..300),
            qx in 0.0f64..100.0, qy in 0.0f64..100.0, r in 0.0f64..50.0,
        ) {
            let items: Vec<(Mbr, usize)> = pts
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| (Mbr::from_point(pt(x, y)), i))
                .collect();
            let tree = RTree::bulk_load(items.clone());
            let q = pt(qx, qy);
            let mut got: Vec<usize> = tree.query_within_dist(q, r).into_iter().copied().collect();
            got.sort_unstable();
            let mut expect: Vec<usize> = items
                .iter()
                .filter(|(m, _)| m.min_dist(q) <= r)
                .map(|(_, i)| *i)
                .collect();
            expect.sort_unstable();
            prop_assert_eq!(got, expect);
        }
    }
}
