/// A partitioned in-memory dataset — the analogue of an RDD whose element
/// type packages a partition's data (the paper's `RpTrieRDD`, Section V-C).
#[derive(Debug, Clone)]
pub struct DistDataset<T> {
    partitions: Vec<Vec<T>>,
}

impl<T> DistDataset<T> {
    /// Wraps explicit partitions.
    pub fn from_partitions(partitions: Vec<Vec<T>>) -> Self {
        DistDataset { partitions }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The items of partition `p`.
    pub fn partition(&self, p: usize) -> &[T] {
        &self.partitions[p]
    }

    /// All partitions.
    pub fn partitions(&self) -> &[Vec<T>] {
        &self.partitions
    }

    /// Consumes the dataset into its partitions.
    pub fn into_partitions(self) -> Vec<Vec<T>> {
        self.partitions
    }

    /// Total number of items across partitions.
    pub fn total_items(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// Sizes of all partitions (for skew diagnostics).
    pub fn partition_sizes(&self) -> Vec<usize> {
        self.partitions.iter().map(Vec::len).collect()
    }

    /// Transforms each partition wholesale (a `mapPartitions` that builds a
    /// new dataset on the master, e.g. `(trajectories) -> (trajectories,
    /// local index)`).
    pub fn map_partitions_local<R>(self, mut f: impl FnMut(usize, Vec<T>) -> Vec<R>) -> DistDataset<R> {
        DistDataset {
            partitions: self
                .partitions
                .into_iter()
                .enumerate()
                .map(|(i, p)| f(i, p))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let d = DistDataset::from_partitions(vec![vec![1, 2], vec![3]]);
        assert_eq!(d.num_partitions(), 2);
        assert_eq!(d.total_items(), 3);
        assert_eq!(d.partition_sizes(), vec![2, 1]);
        assert_eq!(d.partition(1), &[3]);
    }

    #[test]
    fn map_partitions_local_transforms() {
        let d = DistDataset::from_partitions(vec![vec![1, 2], vec![3]]);
        let e = d.map_partitions_local(|i, p| vec![(i, p.len())]);
        assert_eq!(e.partition(0), &[(0, 2)]);
        assert_eq!(e.partition(1), &[(1, 1)]);
    }
}
