//! Load shedding and deadline primitives for the serving layer.
//!
//! [`AdmissionGate`] is a bounded in-flight counter: each accepted query
//! holds an [`AdmissionPermit`] (RAII — dropping it releases the slot), and
//! a full gate rejects immediately instead of queueing. Rejecting at the
//! door keeps tail latency bounded under overload: the queries that *are*
//! admitted run at normal speed rather than every query running slowly.
//!
//! [`Deadline`] is a tiny clock budget a query carries through the
//! partition schedule; work dispatched after expiry is skipped and the
//! result is marked degraded by the caller. A deadline is a point on a
//! [`crate::Clock`]'s timeline: the caller samples the clock **once per
//! dispatch decision** and passes that sample to every expiry check, so
//! one decision sees one time (and a simulated clock replays the exact
//! same skip/run choices).

use crate::clock::Clock;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A bounded admission counter for concurrent queries (see module docs).
/// Cloning shares the gate.
#[derive(Debug, Clone)]
pub struct AdmissionGate {
    inner: Arc<GateInner>,
}

#[derive(Debug)]
struct GateInner {
    limit: usize,
    in_flight: AtomicUsize,
}

impl AdmissionGate {
    /// A gate admitting at most `limit` concurrent holders. A limit of 0
    /// means unbounded (the gate always admits).
    pub fn new(limit: usize) -> Self {
        AdmissionGate {
            inner: Arc::new(GateInner { limit, in_flight: AtomicUsize::new(0) }),
        }
    }

    /// Tries to take a slot. Returns the permit, or `Err` with the current
    /// in-flight count when the gate is full.
    pub fn try_acquire(&self) -> Result<AdmissionPermit, usize> {
        if self.inner.limit == 0 {
            return Ok(AdmissionPermit { gate: None });
        }
        let mut current = self.inner.in_flight.load(Ordering::Relaxed);
        loop {
            if current >= self.inner.limit {
                return Err(current);
            }
            match self.inner.in_flight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(AdmissionPermit { gate: Some(self.inner.clone()) }),
                Err(seen) => current = seen,
            }
        }
    }

    /// The configured limit (0 = unbounded).
    pub fn limit(&self) -> usize {
        self.inner.limit
    }

    /// Queries currently holding permits.
    pub fn in_flight(&self) -> usize {
        self.inner.in_flight.load(Ordering::Acquire)
    }
}

/// An RAII admission slot; dropping it releases the slot.
#[derive(Debug)]
pub struct AdmissionPermit {
    /// `None` for the unbounded gate (nothing to release).
    gate: Option<Arc<GateInner>>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        if let Some(gate) = &self.gate {
            gate.in_flight.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// A deadline on a [`Clock`]'s timeline, carried through a query's
/// partition schedule (see module docs for the one-sample discipline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Duration,
}

impl Deadline {
    /// A deadline `budget` from `clock`'s current time.
    pub fn after(clock: &dyn Clock, budget: Duration) -> Self {
        Deadline { at: clock.now() + budget }
    }

    /// A deadline at the absolute clock time `at`.
    pub fn at(at: Duration) -> Self {
        Deadline { at }
    }

    /// Whether the deadline has passed as of `now` (one clock sample,
    /// taken by the caller, shared by every check in one decision).
    pub fn expired_at(&self, now: Duration) -> bool {
        now >= self.at
    }

    /// Time left until expiry as of `now` (zero once expired).
    pub fn remaining_at(&self, now: Duration) -> Duration {
        self.at.saturating_sub(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_admits_up_to_limit_then_rejects() {
        let gate = AdmissionGate::new(2);
        let a = gate.try_acquire().expect("slot 1");
        let _b = gate.try_acquire().expect("slot 2");
        assert_eq!(gate.in_flight(), 2);
        assert!(gate.try_acquire().is_err(), "third acquire must shed");
        drop(a);
        assert_eq!(gate.in_flight(), 1);
        let _c = gate.try_acquire().expect("slot freed by drop");
    }

    #[test]
    fn zero_limit_is_unbounded() {
        let gate = AdmissionGate::new(0);
        let permits: Vec<_> = (0..64).map(|_| gate.try_acquire().unwrap()).collect();
        assert_eq!(gate.in_flight(), 0, "unbounded gate does not count");
        drop(permits);
    }

    #[test]
    fn clones_share_the_counter() {
        let gate = AdmissionGate::new(1);
        let shared = gate.clone();
        let _p = gate.try_acquire().unwrap();
        assert!(shared.try_acquire().is_err());
    }

    #[test]
    fn gate_is_safe_under_contention() {
        let gate = AdmissionGate::new(8);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let g = gate.clone();
            handles.push(std::thread::spawn(move || {
                let mut admitted = 0usize;
                for _ in 0..1000 {
                    if let Ok(p) = g.try_acquire() {
                        admitted += 1;
                        drop(p);
                    }
                }
                admitted
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0);
        assert_eq!(gate.in_flight(), 0, "every permit released");
    }

    #[test]
    fn deadline_expiry_against_a_clock_sample() {
        use crate::clock::{SimClock, SystemClock};

        let sys = SystemClock;
        let d = Deadline::after(&sys, Duration::from_secs(3600));
        let now = sys.now();
        assert!(!d.expired_at(now));
        assert!(d.remaining_at(now) > Duration::from_secs(3000));

        let sim = SimClock::new();
        let d = Deadline::after(&sim, Duration::from_millis(10));
        assert!(!d.expired_at(sim.now()));
        sim.advance(Duration::from_millis(9));
        assert!(!d.expired_at(sim.now()));
        sim.advance(Duration::from_millis(1));
        let now = sim.now();
        assert!(d.expired_at(now), "expiry is a pure function of the clock");
        assert_eq!(d.remaining_at(now), Duration::ZERO);
    }
}
