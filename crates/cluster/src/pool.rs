//! A persistent worker pool for latency-serving paths.
//!
//! [`Cluster::run_partitions`](crate::Cluster::run_partitions) exists to
//! *measure*: it re-executes partition closures to estimate single-core
//! durations and schedules them onto a modeled cluster. A serving layer
//! answering live queries wants the opposite trade: no re-measurement, no
//! per-call thread spawns, just a fixed set of long-lived threads draining
//! a work queue — so a query's per-partition tasks run in wall-clock
//! parallel and a second query's tasks interleave with the first's instead
//! of queueing behind the whole job.
//!
//! [`WorkerPool`] provides exactly that:
//!
//! * **long-lived threads** created once, fed through an unbounded
//!   [`crossbeam::channel`] MPMC work queue (submission order = dispatch
//!   order, so callers control priority by submitting in priority order);
//! * **scoped submission** ([`WorkerPool::scope`]): tasks may borrow from
//!   the caller's stack; the scope blocks until every task it submitted
//!   has finished, even if the scope body or a task panics;
//! * **panic containment**: a panicking task never takes a worker thread
//!   down — the panic is caught, the scope observes it, and
//!   [`WorkerPool::scope`] re-raises it *after* every sibling task has
//!   completed (so borrowed data is never freed under a running task).
//!
//! ```
//! use repose_cluster::WorkerPool;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let pool = WorkerPool::new(4);
//! let counter = AtomicUsize::new(0);
//! pool.scope(|s| {
//!     for _ in 0..16 {
//!         s.submit(|| {
//!             counter.fetch_add(1, Ordering::Relaxed);
//!         });
//!     }
//! });
//! assert_eq!(counter.load(Ordering::Relaxed), 16);
//! ```

use crossbeam::channel::{self, Receiver, Sender};
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// The host's available parallelism — the one place pool sizes come from
/// ([`crate::Cluster`] and [`WorkerPool`] both default to it, as does the
/// serving layer's configuration).
pub fn default_pool_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A type-erased unit of work. Tasks are `'static` on the queue; the
/// scoped-submission path transmutes the lifetime and is kept sound by the
/// scope's completion barrier (see [`PoolScope::submit`]).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of long-lived worker threads draining one shared
/// work queue (see module docs).
pub struct WorkerPool {
    /// `Some` until drop; dropping the sender disconnects the queue and
    /// lets idle workers exit.
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// A pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let (sender, receiver) = channel::unbounded::<Job>();
        let workers = (0..threads.max(1))
            .map(|i| {
                let rx: Receiver<Job> = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("repose-pool-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            // The job itself contains the catch_unwind (see
                            // PoolScope::submit); a raw `'static` job that
                            // panics would abort via unwind-into-runtime,
                            // so contain it here too.
                            let _ = catch_unwind(AssertUnwindSafe(job));
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { sender: Some(sender), workers }
    }

    /// A pool sized to the host ([`default_pool_threads`]).
    pub fn with_default_threads() -> Self {
        WorkerPool::new(default_pool_threads())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs `f` with a submission scope: tasks submitted through it may
    /// borrow from the enclosing stack frame, and this call returns only
    /// after every submitted task has finished. If any task panicked, the
    /// panic is re-raised here (after the completion barrier), with the
    /// pool itself unharmed.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&PoolScope<'_, 'env>) -> R) -> R {
        let state = Arc::new(ScopeState::new());
        let scope = PoolScope {
            pool: self,
            state: Arc::clone(&state),
            _env: PhantomData,
        };
        // The barrier must hold even when `f` itself unwinds after
        // submitting tasks: the guard's Drop waits before the unwind can
        // free anything the tasks borrow.
        let guard = CompletionGuard(&state);
        let result = f(&scope);
        drop(guard); // normal path: wait here
        if state.panicked.load(Ordering::Acquire) {
            panic!("a task submitted to the worker pool panicked");
        }
        result
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Disconnect the queue; workers drain outstanding jobs and exit.
        drop(self.sender.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

/// Pending-task accounting shared between a scope and its tasks.
struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl ScopeState {
    fn new() -> Self {
        ScopeState {
            pending: Mutex::new(0),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn incr(&self) {
        *self.pending.lock().unwrap_or_else(|e| e.into_inner()) += 1;
    }

    fn decr(&self) {
        let mut pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        while *pending > 0 {
            pending = self
                .done
                .wait(pending)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Blocks on scope completion even during unwinding.
struct CompletionGuard<'a>(&'a ScopeState);

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        self.0.wait();
    }
}

/// Submission handle passed to the closure of [`WorkerPool::scope`].
///
/// The `'env` lifetime ties submitted tasks to the enclosing stack frame:
/// anything borrowed lives until the scope's completion barrier releases.
pub struct PoolScope<'pool, 'env> {
    pool: &'pool WorkerPool,
    state: Arc<ScopeState>,
    /// Invariant in `'env`, like `std::thread::Scope`, so the borrow
    /// checker cannot shrink the environment lifetime.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> PoolScope<'_, 'env> {
    /// Enqueues `task` on the pool. Tasks dispatch to workers in
    /// submission order (FIFO), so submitting in priority order *is* the
    /// priority schedule. Panics in `task` are contained (see
    /// [`WorkerPool::scope`]).
    pub fn submit<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.state.incr();
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if catch_unwind(AssertUnwindSafe(task)).is_err() {
                state.panicked.store(true, Ordering::Release);
            }
            state.decr();
        });
        // SAFETY: the scope's completion barrier (`ScopeState::wait`, run
        // by `WorkerPool::scope` or the unwind guard before control leaves
        // the scope) guarantees this job finishes before anything it
        // borrows from `'env` can be dropped, so erasing the lifetime to
        // `'static` for the queue is sound. The decrement is inside the
        // job and runs even when the task panics (the catch_unwind above).
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job)
        };
        self.pool
            .sender
            .as_ref()
            .expect("pool queue alive while pool exists")
            .send(job)
            .expect("pool workers alive while pool exists");
    }
}

impl std::fmt::Debug for PoolScope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolScope")
            .field("threads", &self.pool.threads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn tasks_borrow_stack_data() {
        let pool = WorkerPool::new(3);
        let data = [1u64, 2, 3, 4, 5];
        let sum = AtomicUsize::new(0);
        pool.scope(|s| {
            for chunk in data.chunks(2) {
                s.submit(|| {
                    sum.fetch_add(
                        chunk.iter().sum::<u64>() as usize,
                        Ordering::Relaxed,
                    );
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn scope_blocks_until_all_tasks_finish() {
        let pool = WorkerPool::new(4);
        let finished = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                s.submit(|| {
                    std::thread::sleep(Duration::from_millis(5));
                    finished.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(finished.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn tasks_run_concurrently_across_workers() {
        // Two tasks that each wait for the other: completes only if they
        // really run on two threads at once.
        let pool = WorkerPool::new(2);
        let rendezvous = AtomicUsize::new(0);
        let meet = || {
            rendezvous.fetch_add(1, Ordering::SeqCst);
            let t0 = std::time::Instant::now();
            while rendezvous.load(Ordering::SeqCst) < 2 {
                assert!(
                    t0.elapsed() < Duration::from_secs(10),
                    "tasks never ran concurrently"
                );
                std::thread::yield_now();
            }
        };
        pool.scope(|s| {
            s.submit(meet);
            s.submit(meet);
        });
        assert_eq!(rendezvous.load(Ordering::SeqCst), 2);
    }

    /// The satellite-required containment test: a panicking task must not
    /// kill its worker thread; the scope re-raises the panic only after
    /// every sibling completed; and the pool keeps working afterwards.
    #[test]
    fn panicking_task_is_contained_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let siblings = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.submit(|| panic!("task boom"));
                for _ in 0..4 {
                    s.submit(|| {
                        std::thread::sleep(Duration::from_millis(2));
                        siblings.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(caught.is_err(), "scope must re-raise the task panic");
        assert_eq!(
            siblings.load(Ordering::Relaxed),
            4,
            "siblings must complete before the panic propagates"
        );

        // The pool is fully usable after a contained panic.
        let after = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..4 {
                s.submit(|| {
                    after.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(after.load(Ordering::Relaxed), 4);
        assert_eq!(pool.threads(), 2, "no worker thread was lost");
    }

    /// Shutdown: dropping the pool drains outstanding work and joins every
    /// worker (no detached threads, no lost tasks).
    #[test]
    fn drop_drains_and_joins() {
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            let done = Arc::clone(&done);
            pool.scope(|s| {
                for _ in 0..6 {
                    let done = Arc::clone(&done);
                    s.submit(move || {
                        std::thread::sleep(Duration::from_millis(1));
                        done.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        } // drop joins the workers
        assert_eq!(done.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn nested_scopes_share_the_pool() {
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            s.submit(|| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        pool.scope(|s| {
            s.submit(|| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let ran = AtomicUsize::new(0);
        pool.scope(|s| {
            s.submit(|| {
                ran.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn default_pool_threads_is_positive() {
        assert!(default_pool_threads() >= 1);
    }
}
