//! Jittered exponential backoff for retry and hedge timers.
//!
//! One [`Backoff`] instance paces the retries of one logical operation
//! (e.g. one shard's attempts within one query): each call to
//! [`Backoff::next_delay`] returns the wait before the *next* attempt,
//! doubling (by [`BackoffConfig::factor`]) from [`BackoffConfig::base`]
//! up to [`BackoffConfig::cap`], with uniform jitter of ±`jitter` of the
//! current step mixed in so synchronized clients fan out instead of
//! retrying in lockstep.
//!
//! The jitter stream comes from the workspace's deterministic compat
//! [`rand`] generator, seeded by the caller: the same seed yields the
//! same delay sequence, so fault-injection tests that count timer firings
//! are reproducible run-to-run.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Duration;

/// Shape of a [`Backoff`] delay sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffConfig {
    /// First (unjittered) delay.
    pub base: Duration,
    /// Upper bound on the unjittered step; with maximum positive jitter a
    /// delay can reach `cap * (1 + jitter)` but never more.
    pub cap: Duration,
    /// Multiplier applied to the step after each attempt (>= 1.0).
    pub factor: f64,
    /// Jitter fraction in `[0, 1]`: each delay is the current step scaled
    /// by a uniform factor from `[1 - jitter, 1 + jitter)`.
    pub jitter: f64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            factor: 2.0,
            jitter: 0.5,
        }
    }
}

/// A deterministic jittered-exponential delay sequence (see module docs).
#[derive(Debug)]
pub struct Backoff {
    config: BackoffConfig,
    /// Current unjittered step in seconds.
    step: f64,
    rng: StdRng,
    attempts: u32,
}

impl Backoff {
    /// A sequence shaped by `config`, with the jitter stream seeded by
    /// `seed` (same seed, same delays).
    pub fn new(config: BackoffConfig, seed: u64) -> Self {
        Backoff::with_rng(config, StdRng::seed_from_u64(seed))
    }

    /// A sequence shaped by `config` drawing jitter from a caller-supplied
    /// generator — the fully injectable form: a simulator (or a caller
    /// splitting one master RNG across many backoffs) controls the entire
    /// jitter stream, not just its seed. [`Backoff::new`] is this with a
    /// freshly seeded [`StdRng`].
    pub fn with_rng(config: BackoffConfig, rng: StdRng) -> Self {
        assert!(config.factor >= 1.0, "backoff must not shrink");
        assert!(
            (0.0..=1.0).contains(&config.jitter),
            "jitter is a fraction of the step"
        );
        assert!(config.cap >= config.base, "cap below base");
        Backoff {
            config,
            step: config.base.as_secs_f64(),
            rng,
            attempts: 0,
        }
    }

    /// The delay to wait before the next attempt, advancing the sequence.
    /// Always within `[step * (1 - jitter), step * (1 + jitter))` of the
    /// current unjittered step, which itself never exceeds the cap.
    pub fn next_delay(&mut self) -> Duration {
        let step = self.step;
        self.step = (self.step * self.config.factor).min(self.config.cap.as_secs_f64());
        self.attempts += 1;
        let scale = if self.config.jitter > 0.0 {
            self.rng
                .random_range(1.0 - self.config.jitter..1.0 + self.config.jitter)
        } else {
            1.0
        };
        Duration::from_secs_f64(step * scale)
    }

    /// Attempts paid for so far (calls to [`Backoff::next_delay`]).
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Resets the sequence to its first step without reseeding the jitter
    /// stream (a success ends the episode; the next failure starts small).
    pub fn reset(&mut self) {
        self.step = self.config.base.as_secs_f64();
        self.attempts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(base_ms: u64, cap_ms: u64, factor: f64, jitter: f64) -> BackoffConfig {
        BackoffConfig {
            base: Duration::from_millis(base_ms),
            cap: Duration::from_millis(cap_ms),
            factor,
            jitter,
        }
    }

    #[test]
    fn unjittered_sequence_doubles_to_cap() {
        let mut b = Backoff::new(cfg(10, 70, 2.0, 0.0), 0);
        let delays: Vec<u128> = (0..5).map(|_| b.next_delay().as_millis()).collect();
        assert_eq!(delays, vec![10, 20, 40, 70, 70], "doubles, then pins at cap");
        assert_eq!(b.attempts(), 5);
    }

    #[test]
    fn jitter_stays_within_bounds_and_step_never_exceeds_cap() {
        let c = cfg(10, 1000, 2.0, 0.5);
        let mut b = Backoff::new(c, 42);
        let mut step = 10.0f64;
        for _ in 0..50 {
            let d = b.next_delay().as_secs_f64() * 1000.0;
            let lo = step * (1.0 - c.jitter);
            let hi = step * (1.0 + c.jitter);
            assert!(d >= lo - 1e-9 && d < hi + 1e-9, "{d} outside [{lo}, {hi})");
            step = (step * c.factor).min(1000.0);
        }
    }

    #[test]
    fn same_seed_same_delays_different_seed_diverges() {
        let c = cfg(5, 500, 1.7, 0.3);
        let a: Vec<Duration> = {
            let mut b = Backoff::new(c, 7);
            (0..10).map(|_| b.next_delay()).collect()
        };
        let b2: Vec<Duration> = {
            let mut b = Backoff::new(c, 7);
            (0..10).map(|_| b.next_delay()).collect()
        };
        let c2: Vec<Duration> = {
            let mut b = Backoff::new(c, 8);
            (0..10).map(|_| b.next_delay()).collect()
        };
        assert_eq!(a, b2, "deterministic per seed");
        assert_ne!(a, c2, "seeds decorrelate retry storms");
    }

    #[test]
    fn reset_restarts_from_base() {
        let mut b = Backoff::new(cfg(10, 1000, 2.0, 0.0), 0);
        b.next_delay();
        b.next_delay();
        assert_eq!(b.next_delay(), Duration::from_millis(40));
        b.reset();
        assert_eq!(b.attempts(), 0);
        assert_eq!(b.next_delay(), Duration::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "backoff must not shrink")]
    fn shrinking_factor_rejected() {
        Backoff::new(cfg(10, 100, 0.5, 0.0), 0);
    }

    #[test]
    fn injected_rng_reproduces_the_seeded_sequence() {
        let c = cfg(5, 500, 1.7, 0.3);
        let seeded: Vec<Duration> = {
            let mut b = Backoff::new(c, 99);
            (0..10).map(|_| b.next_delay()).collect()
        };
        let injected: Vec<Duration> = {
            let mut b = Backoff::with_rng(c, StdRng::seed_from_u64(99));
            (0..10).map(|_| b.next_delay()).collect()
        };
        assert_eq!(seeded, injected, "new() is with_rng() + seed_from_u64");
    }
}
