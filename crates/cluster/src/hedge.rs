//! The hedging trigger: a latency-percentile tracker for "send a backup
//! request once the primary has outlived what requests normally take".
//!
//! Extracted from the shard coordinator so the policy is testable on its
//! own and — like [`crate::Backoff`] — free of ambient entropy: the
//! samples come from whatever [`crate::Clock`] the caller times attempts
//! with (virtual time in simulation, the monotonic clock in production),
//! and the optional decorrelation jitter draws from an injectable seeded
//! RNG, so the exact tick a hedge fires on replays deterministically from
//! a seed.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;
use std::time::Duration;

/// How many completed-attempt samples the tracker retains (a bounded ring:
/// old traffic ages out, the percentile follows current conditions).
const SAMPLE_CAPACITY: usize = 512;

/// Below this many samples the percentile is noise; the tracker returns
/// the caller's fallback instead.
const MIN_SAMPLES: usize = 8;

/// A bounded ring of observed attempt latencies and the percentile-based
/// hedge delay derived from it (see module docs).
#[derive(Debug)]
pub struct HedgeTracker {
    samples: VecDeque<Duration>,
    rng: StdRng,
    /// Jitter fraction in `[0, 1]`: each returned delay is scaled by a
    /// uniform factor from `[1 - jitter, 1 + jitter)`. 0 (the default)
    /// draws nothing from the RNG — the production percentile unchanged.
    jitter: f64,
}

impl HedgeTracker {
    /// An empty tracker whose jitter stream (if enabled) is seeded by
    /// `seed`.
    pub fn new(seed: u64) -> Self {
        HedgeTracker {
            samples: VecDeque::with_capacity(SAMPLE_CAPACITY),
            rng: StdRng::seed_from_u64(seed),
            jitter: 0.0,
        }
    }

    /// Enables delay decorrelation: every delay is scaled by a uniform
    /// factor from `[1 - jitter, 1 + jitter)` drawn from the seeded RNG,
    /// so synchronized coordinators hedge at different ticks instead of
    /// stampeding the replicas together.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&jitter),
            "jitter is a fraction of the delay"
        );
        self.jitter = jitter;
        self
    }

    /// Records one completed attempt's latency.
    pub fn record(&mut self, latency: Duration) {
        if self.samples.len() >= SAMPLE_CAPACITY {
            self.samples.pop_front();
        }
        self.samples.push_back(latency);
    }

    /// Samples recorded so far (bounded by the ring capacity).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The hedge delay: the `percentile` (in `0..=1`) of observed attempt
    /// latencies, never below `floor`; `fallback.max(floor)` until enough
    /// samples exist. Jitter (when enabled) scales the result.
    pub fn delay(&mut self, percentile: f64, floor: Duration, fallback: Duration) -> Duration {
        let base = if self.samples.len() < MIN_SAMPLES {
            floor.max(fallback)
        } else {
            let mut sorted: Vec<Duration> = self.samples.iter().copied().collect();
            sorted.sort();
            let idx = ((sorted.len() - 1) as f64 * percentile).round() as usize;
            floor.max(sorted[idx])
        };
        if self.jitter > 0.0 {
            let scale = self
                .rng
                .random_range(1.0 - self.jitter..1.0 + self.jitter);
            Duration::from_secs_f64(base.as_secs_f64() * scale)
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Duration = Duration::from_millis(1);

    #[test]
    fn fallback_until_enough_samples() {
        let mut t = HedgeTracker::new(0);
        for _ in 0..MIN_SAMPLES - 1 {
            t.record(3 * MS);
            assert_eq!(t.delay(0.95, 5 * MS, 250 * MS), 250 * MS);
        }
        t.record(3 * MS);
        assert_eq!(
            t.delay(0.95, MS, 250 * MS),
            3 * MS,
            "percentile takes over at {MIN_SAMPLES} samples"
        );
    }

    #[test]
    fn percentile_is_floored() {
        let mut t = HedgeTracker::new(0);
        for i in 1..=100u64 {
            t.record(Duration::from_millis(i));
        }
        assert_eq!(t.delay(0.95, MS, MS), Duration::from_millis(95));
        assert_eq!(t.delay(0.0, 40 * MS, MS), 40 * MS, "floor wins over p0");
    }

    #[test]
    fn ring_is_bounded_and_follows_recent_traffic() {
        let mut t = HedgeTracker::new(0);
        for _ in 0..SAMPLE_CAPACITY {
            t.record(100 * MS);
        }
        for _ in 0..SAMPLE_CAPACITY {
            t.record(2 * MS);
        }
        assert_eq!(t.len(), SAMPLE_CAPACITY);
        assert_eq!(t.delay(1.0, MS, MS), 2 * MS, "old samples aged out");
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_bounded() {
        let delays = |seed: u64| -> Vec<Duration> {
            let mut t = HedgeTracker::new(seed).with_jitter(0.25);
            for _ in 0..MIN_SAMPLES {
                t.record(100 * MS);
            }
            (0..16).map(|_| t.delay(0.95, MS, MS)).collect()
        };
        let a = delays(7);
        assert_eq!(a, delays(7), "same seed, same hedge ticks");
        assert_ne!(a, delays(8), "seeds decorrelate");
        for d in &a {
            assert!(*d >= 75 * MS && *d < 125 * MS, "{d:?} outside jitter band");
        }
    }

    #[test]
    fn zero_jitter_never_draws_from_the_rng() {
        // Two trackers with different seeds but jitter off must agree on
        // every delay: the production default is RNG-free.
        let mut a = HedgeTracker::new(1);
        let mut b = HedgeTracker::new(2);
        for i in 1..=20u64 {
            a.record(Duration::from_millis(i));
            b.record(Duration::from_millis(i));
        }
        assert_eq!(a.delay(0.9, MS, MS), b.delay(0.9, MS, MS));
    }
}
