use std::time::Duration;

/// A simulated wall-clock duration on the modeled cluster.
pub type SimTime = Duration;

/// List-schedules task durations (in submission order) onto `cores`
/// identical cores; returns the finishing time of the last task.
///
/// This models Spark's task dispatch inside one executor: tasks are handed
/// to the first core that frees up, in order.
pub fn list_schedule(durations: &[Duration], cores: usize) -> Duration {
    assert!(cores > 0, "need at least one core");
    let mut free = vec![Duration::ZERO; cores];
    for &d in durations {
        // earliest-free core
        let (idx, _) = free
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .expect("cores > 0");
        free[idx] += d;
    }
    free.into_iter().max().unwrap_or(Duration::ZERO)
}

/// Work/latency accounting for one distributed job.
#[derive(Debug, Clone)]
pub struct JobStats {
    /// Measured single-core duration of each partition's closure.
    pub partition_times: Vec<Duration>,
    /// Which worker each partition is assigned to.
    pub assignment: Vec<usize>,
    /// Simulated busy time per worker (list schedule over its cores).
    pub worker_times: Vec<Duration>,
    /// Simulated distributed wall time: max over workers.
    pub makespan: SimTime,
    /// Sum of all partition durations (total cluster work).
    pub total_work: Duration,
    /// Physical wall time of the host execution (informational only).
    pub host_wall: Duration,
}

impl JobStats {
    /// Builds the simulated schedule for the measured partition times.
    pub fn simulate(
        partition_times: Vec<Duration>,
        assignment: Vec<usize>,
        workers: usize,
        cores_per_worker: usize,
        host_wall: Duration,
    ) -> Self {
        assert_eq!(partition_times.len(), assignment.len());
        let mut per_worker: Vec<Vec<Duration>> = vec![Vec::new(); workers];
        for (p, &w) in assignment.iter().enumerate() {
            per_worker[w % workers].push(partition_times[p]);
        }
        let worker_times: Vec<Duration> = per_worker
            .iter()
            .map(|d| list_schedule(d, cores_per_worker))
            .collect();
        let makespan = worker_times.iter().copied().max().unwrap_or(Duration::ZERO);
        let total_work = partition_times.iter().sum();
        JobStats {
            partition_times,
            assignment,
            worker_times,
            makespan,
            total_work,
            host_wall,
        }
    }

    /// Load imbalance: max worker busy time over mean worker busy time
    /// (1.0 = perfectly balanced). The paper's heterogeneous partitioning
    /// claim is that this stays near 1.
    pub fn imbalance(&self) -> f64 {
        if self.worker_times.is_empty() {
            return 1.0;
        }
        let max = self.makespan.as_secs_f64();
        let mean = self
            .worker_times
            .iter()
            .map(Duration::as_secs_f64)
            .sum::<f64>()
            / self.worker_times.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Fraction of workers that did any work — the paper's
    /// computing-resource-utilization concern (Section V-A).
    pub fn worker_utilization(&self) -> f64 {
        if self.worker_times.is_empty() {
            return 0.0;
        }
        self.worker_times.iter().filter(|t| **t > Duration::ZERO).count() as f64
            / self.worker_times.len() as f64
    }
}

/// Order statistics over a set of measured call latencies — the reporting
/// unit for mixed read/write serving workloads (`repose-service` and the
/// `serve` experiment): counts alone hide tail behaviour, so QPS is always
/// paired with p50/p95/p99.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Median (50th percentile).
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Worst observed latency.
    pub max: Duration,
}

impl LatencySummary {
    /// Summarizes `samples` (order irrelevant). Percentiles use the
    /// nearest-rank method; an empty sample set yields all-zero stats.
    pub fn from_durations(mut samples: Vec<Duration>) -> Self {
        if samples.is_empty() {
            return LatencySummary {
                count: 0,
                mean: Duration::ZERO,
                p50: Duration::ZERO,
                p95: Duration::ZERO,
                p99: Duration::ZERO,
                max: Duration::ZERO,
            };
        }
        samples.sort_unstable();
        let n = samples.len();
        let pick = |q: f64| -> Duration {
            // Nearest-rank: smallest sample with cumulative share >= q.
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            samples[rank - 1]
        };
        let total: Duration = samples.iter().sum();
        LatencySummary {
            count: n,
            mean: total / n as u32,
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
            max: samples[n - 1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn list_schedule_single_core_sums() {
        assert_eq!(list_schedule(&[ms(2), ms(3), ms(5)], 1), ms(10));
    }

    #[test]
    fn list_schedule_parallel() {
        // 4 tasks of 1ms on 4 cores = 1ms
        assert_eq!(list_schedule(&[ms(1); 4], 4), ms(1));
        // 5 tasks of 1ms on 4 cores = 2ms
        assert_eq!(list_schedule(&[ms(1); 5], 4), ms(2));
    }

    #[test]
    fn list_schedule_in_order_dispatch() {
        // In-order dispatch: [4,1,1,1,1] on 2 cores ->
        // core0: 4; core1: 1+1+1+1 = 4 -> makespan 4
        assert_eq!(list_schedule(&[ms(4), ms(1), ms(1), ms(1), ms(1)], 2), ms(4));
        // but [1,1,1,1,4]: core0: 1+1+4=6? dispatch: t0->c0(1), t1->c1(1),
        // t2->c0(2), t3->c1(2), t4->c0(6) -> makespan 6
        assert_eq!(list_schedule(&[ms(1), ms(1), ms(1), ms(1), ms(4)], 2), ms(6));
    }

    #[test]
    fn empty_schedule() {
        assert_eq!(list_schedule(&[], 8), Duration::ZERO);
    }

    #[test]
    fn simulate_balanced_vs_skewed() {
        // 8 partitions on 2 workers x 2 cores, round-robin assignment
        let balanced = JobStats::simulate(
            vec![ms(10); 8],
            (0..8).map(|i| i % 2).collect(),
            2,
            2,
            ms(1),
        );
        assert_eq!(balanced.makespan, ms(20));
        assert!((balanced.imbalance() - 1.0).abs() < 1e-9);
        assert_eq!(balanced.worker_utilization(), 1.0);

        // all heavy partitions on worker 0
        let skewed = JobStats::simulate(
            vec![ms(10), ms(10), ms(10), ms(10), ms(0), ms(0), ms(0), ms(0)],
            vec![0, 0, 0, 0, 1, 1, 1, 1],
            2,
            2,
            ms(1),
        );
        assert_eq!(skewed.makespan, ms(20));
        assert!(skewed.imbalance() > 1.9);
    }

    #[test]
    fn utilization_counts_idle_workers() {
        let s = JobStats::simulate(vec![ms(5), ms(5)], vec![0, 0], 4, 1, ms(1));
        assert_eq!(s.worker_utilization(), 0.25);
        assert_eq!(s.total_work, ms(10));
    }

    #[test]
    fn latency_summary_order_statistics() {
        // 1..=100 ms: nearest-rank percentiles are exact.
        let samples: Vec<Duration> = (1..=100).rev().map(ms).collect();
        let s = LatencySummary::from_durations(samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, ms(50));
        assert_eq!(s.p95, ms(95));
        assert_eq!(s.p99, ms(99));
        assert_eq!(s.max, ms(100));
        assert_eq!(s.mean, ms(50) + Duration::from_micros(500));
    }

    #[test]
    fn latency_summary_small_and_empty() {
        let empty = LatencySummary::from_durations(Vec::new());
        assert_eq!(empty.count, 0);
        assert_eq!(empty.p99, Duration::ZERO);
        let one = LatencySummary::from_durations(vec![ms(7)]);
        assert_eq!((one.p50, one.p95, one.p99, one.max), (ms(7), ms(7), ms(7), ms(7)));
    }

    #[test]
    fn empty_job_stats() {
        let s = JobStats::simulate(vec![], vec![], 4, 2, ms(0));
        assert_eq!(s.makespan, Duration::ZERO);
        assert_eq!(s.imbalance(), 1.0);
        assert_eq!(s.worker_utilization(), 0.0);
    }

    proptest::proptest! {
        #[test]
        fn schedule_invariants(
            durs in proptest::collection::vec(0u64..100, 0..40),
            cores in 1usize..8,
            workers in 1usize..8,
        ) {
            let durations: Vec<Duration> = durs.iter().map(|&d| ms(d)).collect();
            // list_schedule is bounded below by the longest task and the
            // mean load, and above by the serial sum.
            let span = list_schedule(&durations, cores);
            let total: Duration = durations.iter().sum();
            let longest = durations.iter().copied().max().unwrap_or(Duration::ZERO);
            proptest::prop_assert!(span <= total);
            proptest::prop_assert!(span >= longest);
            proptest::prop_assert!(span.as_secs_f64() >= total.as_secs_f64() / cores as f64 - 1e-9);

            // JobStats invariants with round-robin assignment.
            let assignment: Vec<usize> = (0..durations.len()).map(|i| i % workers).collect();
            let s = JobStats::simulate(durations.clone(), assignment, workers, cores, ms(1));
            proptest::prop_assert!(s.makespan >= longest);
            proptest::prop_assert!(s.makespan <= total);
            proptest::prop_assert!(s.imbalance() >= 1.0 - 1e-9);
            proptest::prop_assert!(s.worker_utilization() <= 1.0);
        }
    }
}
