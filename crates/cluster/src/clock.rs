//! The time source every timer-driven decision reads.
//!
//! Deadlines, heartbeats, retry backoffs, and hedge triggers all used to
//! sample [`Instant::now`] directly, which made any fault interleaving
//! that involved a timer unreproducible: the same seed could retry on one
//! run and hedge on the next depending on host scheduling. A [`Clock`]
//! separates *what time it is* from *who asks*: production code carries a
//! [`SystemClock`] (the monotonic clock, anchored once per process) and
//! behaves exactly as before, while the deterministic simulator carries a
//! [`SimClock`] whose time only moves when the simulation advances it —
//! so a failing seed replays bit-exact, timers included.
//!
//! Two conventions keep call sites honest:
//!
//! * Time is a [`Duration`] since the clock's epoch, not an [`Instant`]:
//!   virtual time has no `Instant` to offer, and a `Duration` makes
//!   arithmetic (deadlines, ages) explicit and total.
//! * A decision loop samples [`Clock::now`] **once per iteration** and
//!   compares every timer against that one sample. Re-sampling inside a
//!   single decision lets the clock move between the samples, which is
//!   both a determinism leak and the duplicated-`Instant::now` bug class
//!   this trait was introduced to retire.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// A monotonic time source (see module docs). `now` is a duration since
/// an arbitrary fixed epoch; only differences and comparisons between
/// values from the *same* clock are meaningful.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// The current time since this clock's epoch. Monotonic:
    /// never decreases across calls.
    fn now(&self) -> Duration;

    /// Blocks (or, for a virtual clock, advances time) for `d`.
    fn sleep(&self, d: Duration);
}

/// The process's monotonic clock, anchored at first use. The production
/// default everywhere a [`Clock`] is accepted.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        process_epoch().elapsed()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A virtual clock for deterministic simulation: time is a counter that
/// moves only when the simulation advances it ([`SimClock::advance`]) or
/// when a simulated component sleeps (the sleep *is* the advance — a
/// single-threaded simulation has nothing else to wait for). Shared by
/// `Arc` between the simulator and every component under test.
#[derive(Debug, Default)]
pub struct SimClock {
    nanos: AtomicU64,
}

impl SimClock {
    /// A virtual clock at time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Moves time forward by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos
            .fetch_add(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::SeqCst);
    }

    /// Moves time forward *to* `t` if `t` is ahead (never backwards).
    pub fn advance_to(&self, t: Duration) {
        let target = t.as_nanos().min(u64::MAX as u128) as u64;
        self.nanos.fetch_max(target, Ordering::SeqCst);
    }
}

impl Clock for SimClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn system_clock_is_monotonic_and_sleeps() {
        let c = SystemClock;
        let a = c.now();
        c.sleep(Duration::from_millis(2));
        let b = c.now();
        assert!(b > a, "time moved across a sleep");
    }

    #[test]
    fn sim_clock_moves_only_when_advanced() {
        let c = SimClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        let before = c.now();
        assert_eq!(c.now(), before, "virtual time does not drift");
        c.advance(Duration::from_millis(7));
        assert_eq!(c.now(), Duration::from_millis(7));
        c.sleep(Duration::from_millis(3));
        assert_eq!(c.now(), Duration::from_millis(10), "sleep advances");
        c.advance_to(Duration::from_millis(5));
        assert_eq!(c.now(), Duration::from_millis(10), "never backwards");
        c.advance_to(Duration::from_millis(12));
        assert_eq!(c.now(), Duration::from_millis(12));
    }

    #[test]
    fn clocks_are_object_safe_and_shareable() {
        let clocks: Vec<Arc<dyn Clock>> =
            vec![Arc::new(SystemClock), Arc::new(SimClock::new())];
        for c in clocks {
            let _ = c.now();
        }
    }
}
