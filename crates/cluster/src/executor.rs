use crate::{ClusterConfig, DistDataset, Partitioner};
use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// The simulated cluster: a topology plus a physical thread pool that
/// executes partition closures and measures their single-core durations.
#[derive(Debug, Clone)]
pub struct Cluster {
    config: ClusterConfig,
    pool_threads: usize,
}

impl Cluster {
    /// A cluster with the given topology, using as many physical threads as
    /// the host offers ([`crate::default_pool_threads`] — the same sizing
    /// rule as [`crate::WorkerPool`]).
    pub fn new(config: ClusterConfig) -> Self {
        Cluster { config, pool_threads: crate::default_pool_threads() }
    }

    /// The paper's 16x4 cluster.
    pub fn paper_default() -> Self {
        Cluster::new(ClusterConfig::paper_default())
    }

    /// The configured topology.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// Distributes `items` into partitions with `partitioner`, assigning
    /// partitions to workers round-robin (partition `p` lives on worker
    /// `p % workers`), like Spark's default placement.
    pub fn parallelize<T, P: Partitioner<T>>(&self, items: Vec<T>, partitioner: &P) -> DistDataset<T> {
        let n = partitioner.num_partitions();
        let mut parts: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            let p = partitioner.partition(i, &item);
            assert!(p < n, "partitioner returned {p} >= {n}");
            parts[p].push(item);
        }
        DistDataset::from_partitions(parts)
    }

    /// Runs `f` once per partition (Spark's `mapPartitions` + `collect`),
    /// returning per-partition results and measured durations.
    ///
    /// Results come back in partition order. Durations are per-partition
    /// single-core execution times, which [`crate::JobStats`] turns into a
    /// simulated cluster makespan.
    pub fn run_partitions<T, R, F>(&self, data: &DistDataset<T>, f: F) -> (Vec<R>, Vec<Duration>, Duration)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        self.run_partitions_repeated(data, f, self.config.timing_repeats)
    }

    /// Like [`Cluster::run_partitions`] but always times a *single cold
    /// run*, ignoring `timing_repeats`.
    ///
    /// Required for closures that mutate cross-partition shared state —
    /// e.g. a shared top-k threshold collector: a timing re-run would
    /// execute against the already-tightened collector, do a fraction of
    /// the first run's work, and the min-of-repeats would report warm-
    /// rerun cost instead of the job's true cost.
    pub fn run_partitions_cold<T, R, F>(
        &self,
        data: &DistDataset<T>,
        f: F,
    ) -> (Vec<R>, Vec<Duration>, Duration)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        self.run_partitions_repeated(data, f, 1)
    }

    fn run_partitions_repeated<T, R, F>(
        &self,
        data: &DistDataset<T>,
        f: F,
        timing_repeats: usize,
    ) -> (Vec<R>, Vec<Duration>, Duration)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        let started = Instant::now();
        let n = data.num_partitions();
        let results: Mutex<Vec<Option<(R, Duration)>>> =
            Mutex::new((0..n).map(|_| None).collect());
        let next = std::sync::atomic::AtomicUsize::new(0);
        let threads = self.pool_threads.min(n.max(1));
        crossbeam::scope(|s| {
            for _ in 0..threads {
                s.spawn(|_| loop {
                    let p = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if p >= n {
                        break;
                    }
                    let t0 = Instant::now();
                    let r = f(p, data.partition(p));
                    let mut dt = t0.elapsed();
                    // Extra timing runs: keep the minimum (steady state).
                    for _ in 1..timing_repeats {
                        let t0 = Instant::now();
                        let _ = f(p, data.partition(p));
                        dt = dt.min(t0.elapsed());
                    }
                    results.lock()[p] = Some((r, dt));
                });
            }
        })
        .expect("partition worker panicked");
        let host_wall = started.elapsed();
        let mut out = Vec::with_capacity(n);
        let mut times = Vec::with_capacity(n);
        for slot in results.into_inner() {
            let (r, t) = slot.expect("all partitions executed");
            out.push(r);
            times.push(t);
        }
        (out, times, host_wall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JobStats, RoundRobinPartitioner};

    #[test]
    fn parallelize_round_robin() {
        let c = Cluster::new(ClusterConfig { workers: 2, cores_per_worker: 1, timing_repeats: 1 });
        let d = c.parallelize((0..10).collect(), &RoundRobinPartitioner::new(4));
        assert_eq!(d.num_partitions(), 4);
        assert_eq!(d.partition(0), &[0, 4, 8]);
        assert_eq!(d.partition(3), &[3, 7]);
        assert_eq!(d.total_items(), 10);
    }

    #[test]
    fn run_partitions_collects_in_order() {
        let c = Cluster::new(ClusterConfig { workers: 4, cores_per_worker: 2, timing_repeats: 1 });
        let d = c.parallelize((0..100).collect(), &RoundRobinPartitioner::new(8));
        let (sums, times, _wall) = c.run_partitions(&d, |_, part: &[i32]| -> i32 {
            part.iter().sum()
        });
        assert_eq!(sums.len(), 8);
        assert_eq!(sums.iter().sum::<i32>(), (0..100).sum::<i32>());
        assert_eq!(times.len(), 8);
    }

    #[test]
    fn job_stats_integration() {
        let cfg = ClusterConfig { workers: 2, cores_per_worker: 2, timing_repeats: 1 };
        let c = Cluster::new(cfg);
        let d = c.parallelize((0..64).collect(), &RoundRobinPartitioner::new(4));
        let (_r, times, wall) = c.run_partitions(&d, |_, part: &[i32]| part.len());
        let stats = JobStats::simulate(
            times,
            (0..4).collect(),
            cfg.workers,
            cfg.cores_per_worker,
            wall,
        );
        assert_eq!(stats.worker_times.len(), 2);
        assert!(stats.makespan <= stats.total_work + Duration::from_nanos(1));
    }

    #[test]
    fn empty_dataset() {
        let c = Cluster::paper_default();
        let d = c.parallelize(Vec::<i32>::new(), &RoundRobinPartitioner::new(4));
        let (r, times, _) = c.run_partitions(&d, |_, p: &[i32]| p.len());
        assert_eq!(r, vec![0, 0, 0, 0]);
        assert_eq!(times.len(), 4);
    }

    #[test]
    #[should_panic(expected = "partitioner returned")]
    fn bad_partitioner_panics() {
        struct Bad;
        impl Partitioner<i32> for Bad {
            fn num_partitions(&self) -> usize {
                2
            }
            fn partition(&self, _: usize, _: &i32) -> usize {
                7
            }
        }
        Cluster::paper_default().parallelize(vec![1], &Bad);
    }
}
