use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Decides which partition each item of a dataset goes to — the analogue of
/// Spark's abstract `Partitioner` class the paper subclasses (Section V-C).
pub trait Partitioner<T>: Send + Sync {
    /// Number of partitions produced.
    fn num_partitions(&self) -> usize;
    /// Target partition of the item at position `index`.
    fn partition(&self, index: usize, item: &T) -> usize;
}

/// Round-robin by position — what REPOSE applies *after* sorting by
/// (cluster id, trajectory id).
#[derive(Debug, Clone, Copy)]
pub struct RoundRobinPartitioner {
    n: usize,
}

impl RoundRobinPartitioner {
    /// `n` must be positive.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one partition");
        RoundRobinPartitioner { n }
    }
}

impl<T> Partitioner<T> for RoundRobinPartitioner {
    fn num_partitions(&self) -> usize {
        self.n
    }
    fn partition(&self, index: usize, _item: &T) -> usize {
        index % self.n
    }
}

/// Uniform random placement (the paper's "random" baseline strategy,
/// Table VII). Deterministic per seed and index.
#[derive(Debug, Clone, Copy)]
pub struct RandomPartitioner {
    n: usize,
    seed: u64,
}

impl RandomPartitioner {
    /// `n` must be positive.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0, "need at least one partition");
        RandomPartitioner { n, seed }
    }
}

impl<T> Partitioner<T> for RandomPartitioner {
    fn num_partitions(&self) -> usize {
        self.n
    }
    fn partition(&self, index: usize, _item: &T) -> usize {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (index as u64).wrapping_mul(0x9E3779B97F4A7C15));
        rng.random_range(0..self.n)
    }
}

/// Hash of the item (requires `T: Hash`) — Spark's default `HashPartitioner`.
#[derive(Debug, Clone, Copy)]
pub struct HashPartitioner {
    n: usize,
}

impl HashPartitioner {
    /// `n` must be positive.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one partition");
        HashPartitioner { n }
    }
}

impl<T: Hash> Partitioner<T> for HashPartitioner {
    fn num_partitions(&self) -> usize {
        self.n
    }
    fn partition(&self, _index: usize, item: &T) -> usize {
        let mut h = DefaultHasher::new();
        item.hash(&mut h);
        (h.finish() % self.n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let p = RoundRobinPartitioner::new(4);
        let assigned: Vec<usize> = (0..8).map(|i| Partitioner::<u32>::partition(&p, i, &0)).collect();
        assert_eq!(assigned, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let p = RandomPartitioner::new(7, 42);
        for i in 0..100 {
            let a = Partitioner::<u32>::partition(&p, i, &0);
            let b = Partitioner::<u32>::partition(&p, i, &0);
            assert_eq!(a, b);
            assert!(a < 7);
        }
    }

    #[test]
    fn random_spreads_items() {
        let p = RandomPartitioner::new(4, 7);
        let mut counts = [0usize; 4];
        for i in 0..400 {
            counts[Partitioner::<u32>::partition(&p, i, &0)] += 1;
        }
        for c in counts {
            assert!(c > 40, "partition starved: {counts:?}");
        }
    }

    #[test]
    fn hash_partitioner_consistent() {
        let p = HashPartitioner::new(5);
        assert_eq!(p.partition(0, &"abc"), p.partition(9, &"abc"));
        assert!(p.partition(0, &"abc") < 5);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        RoundRobinPartitioner::new(0);
    }
}
