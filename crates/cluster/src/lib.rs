//! A deterministic in-process distributed in-memory compute substrate — the
//! repository's stand-in for the paper's Spark cluster (1 master + 16
//! workers × 4 cores).
//!
//! # Why a simulation is faithful here
//!
//! Every distributed claim of the paper (load balance, computing-resource
//! utilization, per-partition query time, makespan as the number of
//! partitions grows) is a function of *how long each partition's local work
//! takes* and *how partitions are scheduled onto worker cores*. This crate
//! executes partition closures on a physical thread pool, records each
//! partition's CPU-work duration, and then *simulates* the cluster schedule
//! (per-worker core queues, Spark-style in-order task dispatch) to produce
//! the distributed makespan. The simulated makespan is independent of how
//! many physical cores the host happens to have.
//!
//! The paper's `RpTrieRDD.mapPartitions` becomes [`Cluster::run_partitions`];
//! `collect` becomes the returned `Vec` of per-partition results.
//!
//! ```
//! use repose_cluster::{Cluster, ClusterConfig, JobStats, RoundRobinPartitioner};
//!
//! let config = ClusterConfig { workers: 2, cores_per_worker: 2, timing_repeats: 1 };
//! let cluster = Cluster::new(config);
//! let data = cluster.parallelize((0..100).collect(), &RoundRobinPartitioner::new(4));
//!
//! // mapPartitions + collect, with per-partition durations measured.
//! let (sums, times, wall) = cluster.run_partitions(&data, |_pi, part: &[i32]| {
//!     part.iter().sum::<i32>()
//! });
//! assert_eq!(sums.iter().sum::<i32>(), (0..100).sum::<i32>());
//!
//! // The measured durations schedule onto the modeled 2x2 cluster.
//! let stats = JobStats::simulate(times, (0..4).collect(), 2, 2, wall);
//! assert!(stats.makespan <= stats.total_work);
//! assert!(stats.worker_utilization() > 0.0);
//! ```

#![warn(missing_docs)]

mod admission;
mod backoff;
mod clock;
mod dataset;
mod executor;
mod hedge;
mod partitioner;
mod pool;
mod stats;

pub use admission::{AdmissionGate, AdmissionPermit, Deadline};
pub use backoff::{Backoff, BackoffConfig};
pub use clock::{Clock, SimClock, SystemClock};
pub use hedge::HedgeTracker;
pub use dataset::DistDataset;
pub use executor::Cluster;
pub use partitioner::{HashPartitioner, Partitioner, RandomPartitioner, RoundRobinPartitioner};
pub use pool::{default_pool_threads, PoolScope, WorkerPool};
pub use stats::{list_schedule, JobStats, LatencySummary, SimTime};

/// Cluster topology: the paper's default is 16 workers with 4 cores each
/// and one partition per core (64 partitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub workers: usize,
    /// Cores per worker node.
    pub cores_per_worker: usize,
    /// How many times each partition closure is executed when measuring;
    /// the per-partition duration is the *minimum* across repeats (the
    /// robust steady-state estimator). The paper repeats each query 20
    /// times; 1 (the default) measures a single cold run.
    pub timing_repeats: usize,
}

impl ClusterConfig {
    /// The paper's experimental cluster (Section VII-A).
    pub fn paper_default() -> Self {
        ClusterConfig { workers: 16, cores_per_worker: 4, timing_repeats: 1 }
    }

    /// Total cores — the natural default number of partitions.
    pub fn total_cores(&self) -> usize {
        self.workers * self.cores_per_worker
    }

    /// Sets [`ClusterConfig::timing_repeats`].
    pub fn with_timing_repeats(mut self, repeats: usize) -> Self {
        assert!(repeats >= 1, "need at least one timing run");
        self.timing_repeats = repeats;
        self
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_topology() {
        let c = ClusterConfig::paper_default();
        assert_eq!(c.workers, 16);
        assert_eq!(c.cores_per_worker, 4);
        assert_eq!(c.total_cores(), 64);
    }
}
