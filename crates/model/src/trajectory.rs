use crate::{Mbr, Point, Segment};
use serde::{Deserialize, Serialize};

/// Identifier of a trajectory within a [`crate::Dataset`].
pub type TrajId = u64;

/// A finite, time-ordered sequence of sample points (Definition 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    /// Unique identifier inside its dataset.
    pub id: TrajId,
    /// The ordered sample points.
    pub points: Vec<Point>,
}

impl Trajectory {
    /// Creates a trajectory from an id and points.
    pub fn new(id: TrajId, points: Vec<Point>) -> Self {
        Trajectory { id, points }
    }

    /// Number of sample points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trajectory has no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Tightest bounding rectangle, or `None` when empty.
    pub fn mbr(&self) -> Option<Mbr> {
        Mbr::from_points(&self.points)
    }

    /// First sample point, if any.
    pub fn first(&self) -> Option<Point> {
        self.points.first().copied()
    }

    /// Last sample point, if any.
    pub fn last(&self) -> Option<Point> {
        self.points.last().copied()
    }

    /// Total polyline length (sum of consecutive point distances).
    pub fn path_length(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].dist(&w[1]))
            .sum()
    }

    /// Decomposes the trajectory into its line segments, tagged with the
    /// trajectory id and the segment's position. Used by the DFT baseline.
    pub fn segments(&self) -> Vec<Segment> {
        self.points
            .windows(2)
            .enumerate()
            .map(|(i, w)| Segment::new(self.id, i as u32, w[0], w[1]))
            .collect()
    }

    /// Splits the trajectory into chunks of at most `max_len` points,
    /// assigning fresh ids starting at `next_id`. Consecutive chunks share no
    /// points (the paper splits long trajectories "into multiple
    /// trajectories" without further detail; we use disjoint chunks).
    ///
    /// Returns the chunks and the next unused id.
    pub fn split(&self, max_len: usize, mut next_id: TrajId) -> (Vec<Trajectory>, TrajId) {
        assert!(max_len > 0, "max_len must be positive");
        if self.len() <= max_len {
            return (vec![self.clone()], next_id);
        }
        let mut out = Vec::with_capacity(self.len().div_ceil(max_len));
        for chunk in self.points.chunks(max_len) {
            out.push(Trajectory::new(next_id, chunk.to_vec()));
            next_id += 1;
        }
        (out, next_id)
    }

    /// Returns `true` when every point has finite coordinates.
    pub fn is_finite(&self) -> bool {
        self.points.iter().all(Point::is_finite)
    }

    /// Approximate in-memory size in bytes (id + point storage).
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<TrajId>() + self.points.len() * std::mem::size_of::<Point>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(id: TrajId, pts: &[(f64, f64)]) -> Trajectory {
        Trajectory::new(id, pts.iter().map(|&(x, y)| Point::new(x, y)).collect())
    }

    #[test]
    fn basic_accessors() {
        let t = traj(7, &[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.first(), Some(Point::new(0.0, 0.0)));
        assert_eq!(t.last(), Some(Point::new(1.0, 1.0)));
        assert_eq!(t.path_length(), 2.0);
    }

    #[test]
    fn empty_trajectory() {
        let t = Trajectory::new(0, vec![]);
        assert!(t.is_empty());
        assert!(t.mbr().is_none());
        assert_eq!(t.first(), None);
        assert_eq!(t.path_length(), 0.0);
        assert!(t.segments().is_empty());
    }

    #[test]
    fn mbr_covers_points() {
        let t = traj(1, &[(0.0, 5.0), (2.0, -1.0), (4.0, 3.0)]);
        let m = t.mbr().unwrap();
        assert_eq!(m.min, Point::new(0.0, -1.0));
        assert_eq!(m.max, Point::new(4.0, 5.0));
    }

    #[test]
    fn segments_are_consecutive_pairs() {
        let t = traj(3, &[(0.0, 0.0), (1.0, 0.0), (1.0, 2.0)]);
        let segs = t.segments();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].traj_id, 3);
        assert_eq!(segs[0].seg_idx, 0);
        assert_eq!(segs[1].seg_idx, 1);
        assert_eq!(segs[0].b, segs[1].a);
    }

    #[test]
    fn split_short_returns_clone() {
        let t = traj(0, &[(0.0, 0.0), (1.0, 1.0)]);
        let (chunks, next) = t.split(10, 100);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0], t);
        assert_eq!(next, 100);
    }

    #[test]
    fn split_long_produces_disjoint_chunks_and_new_ids() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 0.0)).collect();
        let t = traj(0, &pts);
        let (chunks, next) = t.split(4, 50);
        assert_eq!(chunks.len(), 3);
        assert_eq!(next, 53);
        assert_eq!(chunks[0].len(), 4);
        assert_eq!(chunks[1].len(), 4);
        assert_eq!(chunks[2].len(), 2);
        let total: usize = chunks.iter().map(Trajectory::len).sum();
        assert_eq!(total, 10);
        assert_eq!(chunks[0].id, 50);
        assert_eq!(chunks[2].id, 52);
    }

    #[test]
    #[should_panic(expected = "max_len must be positive")]
    fn split_zero_panics() {
        traj(0, &[(0.0, 0.0)]).split(0, 0);
    }

    #[test]
    fn mem_bytes_scales_with_len() {
        let t = traj(0, &[(0.0, 0.0), (1.0, 1.0)]);
        assert_eq!(t.mem_bytes(), 8 + 2 * 16);
    }
}
