//! Plain-text trajectory I/O.
//!
//! Real trajectory corpora (T-drive, Porto, ...) ship as CSV-like text.
//! This module reads and writes a simple line format so users can run the
//! library against real data:
//!
//! ```text
//! # one trajectory per line:
//! <id>:<x1>,<y1>;<x2>,<y2>;...
//! ```
//!
//! Lines starting with `#` and blank lines are skipped.

use crate::{Dataset, ModelError, Point, Trajectory};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};

/// Parses one `<id>:<x1>,<y1>;...` line.
fn parse_line(line: &str, lineno: usize) -> Result<Trajectory, ModelError> {
    let bad = |msg: &str| ModelError::InvalidConfig(format!("line {lineno}: {msg}"));
    let (id_s, rest) = line
        .split_once(':')
        .ok_or_else(|| bad("missing ':' separator"))?;
    let id = id_s
        .trim()
        .parse::<u64>()
        .map_err(|_| bad("invalid trajectory id"))?;
    let mut points = Vec::new();
    for (pi, pair) in rest.split(';').enumerate() {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (xs, ys) = pair
            .split_once(',')
            .ok_or_else(|| bad(&format!("point {pi}: missing ','")))?;
        let x = xs
            .trim()
            .parse::<f64>()
            .map_err(|_| bad(&format!("point {pi}: bad x")))?;
        let y = ys
            .trim()
            .parse::<f64>()
            .map_err(|_| bad(&format!("point {pi}: bad y")))?;
        if !x.is_finite() || !y.is_finite() {
            return Err(ModelError::NonFiniteCoordinate { traj_id: id });
        }
        points.push(Point::new(x, y));
    }
    Ok(Trajectory::new(id, points))
}

/// Reads a dataset from the line format.
pub fn read_dataset<R: Read>(reader: R) -> Result<Dataset, ModelError> {
    let mut out = Vec::new();
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line =
            line.map_err(|e| ModelError::InvalidConfig(format!("io error: {e}")))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        out.push(parse_line(trimmed, lineno + 1)?);
    }
    Ok(Dataset::from_trajectories(out))
}

/// Writes a dataset in the line format.
pub fn write_dataset<W: Write>(dataset: &Dataset, mut writer: W) -> std::io::Result<()> {
    let mut buf = String::new();
    for t in dataset.trajectories() {
        buf.clear();
        write!(buf, "{}:", t.id).expect("write to String");
        for (i, p) in t.points.iter().enumerate() {
            if i > 0 {
                buf.push(';');
            }
            write!(buf, "{},{}", p.x, p.y).expect("write to String");
        }
        buf.push('\n');
        writer.write_all(buf.as_bytes())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_line() {
        let t = parse_line("7:1.5,2.5;3.0,4.0", 1).unwrap();
        assert_eq!(t.id, 7);
        assert_eq!(t.points, vec![Point::new(1.5, 2.5), Point::new(3.0, 4.0)]);
    }

    #[test]
    fn parse_tolerates_whitespace() {
        let t = parse_line(" 3 : 1.0 , 2.0 ; 3.0 , 4.0 ", 1).unwrap();
        assert_eq!(t.id, 3);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn parse_errors_are_descriptive() {
        assert!(parse_line("no-colon", 5).unwrap_err().to_string().contains("line 5"));
        assert!(parse_line("x:1,2", 1).is_err()); // bad id
        assert!(parse_line("1:1;2", 1).is_err()); // missing comma
        assert!(parse_line("1:a,2", 1).is_err()); // bad coord
        assert!(matches!(
            parse_line("1:inf,2", 1),
            Err(ModelError::NonFiniteCoordinate { traj_id: 1 })
        ));
    }

    #[test]
    fn read_skips_comments_and_blanks() {
        let text = "# header\n\n1:0,0;1,1\n  \n2:2,2;3,3\n";
        let d = read_dataset(text.as_bytes()).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.trajectories()[1].id, 2);
    }

    #[test]
    fn roundtrip_preserves_data() {
        let d = Dataset::from_trajectories(vec![
            Trajectory::new(0, vec![Point::new(0.125, -7.5), Point::new(1e-9, 2.0)]),
            Trajectory::new(42, vec![Point::new(-1.0, -2.0)]),
        ]);
        let mut buf = Vec::new();
        write_dataset(&d, &mut buf).unwrap();
        let back = read_dataset(&buf[..]).unwrap();
        assert_eq!(d.trajectories(), back.trajectories());
    }

    #[test]
    fn read_bad_line_reports_line_number() {
        let text = "1:0,0;1,1\nbroken line\n";
        let err = read_dataset(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }
}
