use crate::{Mbr, Point, TrajId, Trajectory};
use repose_succinct::FlatVec;
use serde::{Deserialize, Serialize};

/// A flat arena of trajectories: every sample point of every trajectory in
/// one contiguous `Vec<Point>`, plus an `(offset, len)` table keyed by
/// *slot* (the insertion index).
///
/// This is the storage layout of the hot query path. A dataset stored as
/// `Vec<Trajectory>` scatters each trajectory's points into its own heap
/// island, so a leaf-verification scan chases one pointer per candidate and
/// the prefetcher restarts at every trajectory boundary. The arena keeps
/// the scan linear in memory: `points(slot)` is a plain subslice of one
/// allocation, candidates that are verified together were laid out
/// together at build time, and copying a trajectory between stores
/// ([`TrajStore::push_from`]) is a single contiguous `memcpy` with no
/// intermediate [`Trajectory`] allocation.
///
/// A store is frozen at index build / compaction time and only ever grows
/// (`push`); [`Trajectory`] remains the I/O type at the edges
/// (CSV loading, the service's write path, serde of datasets).
///
/// ```
/// use repose_model::{Point, TrajStore, Trajectory};
///
/// let mut store = TrajStore::new();
/// let slot = store.push(7, &[Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
/// assert_eq!(store.id(slot), 7);
/// assert_eq!(store.points(slot).len(), 2);
///
/// // Arena-to-arena copy: no per-trajectory heap island in between.
/// let mut other = TrajStore::new();
/// other.push_from(&store, slot);
/// assert_eq!(other.points(0), store.points(slot));
/// ```
/// The three backing arrays live in [`FlatVec`]s, so a store is either
/// owned (build/compaction time) or three zero-copy views into a mapped
/// archive (`starts` is stored as `u64`, not `usize`, so the on-disk
/// layout is platform-independent).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrajStore {
    /// Trajectory id per slot.
    ids: FlatVec<TrajId>,
    /// Prefix offsets into `points`: slot `i` owns
    /// `points[starts[i]..starts[i + 1]]`. Always `ids.len() + 1` entries
    /// (a lone `0` when empty).
    starts: FlatVec<u64>,
    /// All sample points, back to back in slot order.
    points: FlatVec<Point>,
}

/// Same as [`TrajStore::new`]. (Deriving `Default` would produce an
/// *empty* `starts` table, violating the `ids.len() + 1` prefix-table
/// invariant — the first push into such a store corrupts it silently.)
impl Default for TrajStore {
    fn default() -> Self {
        TrajStore::new()
    }
}

impl TrajStore {
    /// An empty store.
    pub fn new() -> Self {
        TrajStore {
            ids: FlatVec::new(),
            starts: FlatVec::Owned(vec![0]),
            points: FlatVec::new(),
        }
    }

    /// An empty store with room for `trajs` trajectories totalling
    /// `points` sample points.
    pub fn with_capacity(trajs: usize, points: usize) -> Self {
        TrajStore {
            ids: FlatVec::with_capacity(trajs),
            starts: {
                let mut s = Vec::with_capacity(trajs + 1);
                s.push(0);
                FlatVec::Owned(s)
            },
            points: FlatVec::with_capacity(points),
        }
    }

    /// Reassembles a store from its backing arrays (e.g. mapped archive
    /// sections), validating the cross-field invariant first.
    pub fn from_parts(
        ids: FlatVec<TrajId>,
        starts: FlatVec<u64>,
        points: FlatVec<Point>,
    ) -> Result<Self, crate::ModelError> {
        let store = TrajStore { ids, starts, points };
        store.validate()?;
        Ok(store)
    }

    /// The backing arrays `(ids, starts, points)` — the archive writer's
    /// view of the store. `starts` is the raw `u64` prefix table.
    pub fn as_parts(&self) -> (&[TrajId], &[u64], &[Point]) {
        (&self.ids, &self.starts, &self.points)
    }

    /// Copies a `Trajectory` slice into a fresh arena, preserving order
    /// (slot `i` holds `trajs[i]`).
    pub fn from_trajectories(trajs: &[Trajectory]) -> Self {
        let total: usize = trajs.iter().map(Trajectory::len).sum();
        let mut store = TrajStore::with_capacity(trajs.len(), total);
        for t in trajs {
            store.push(t.id, &t.points);
        }
        store
    }

    /// Appends a trajectory, returning its slot.
    pub fn push(&mut self, id: TrajId, points: &[Point]) -> usize {
        self.ids.push(id);
        self.points.to_mut().extend_from_slice(points);
        self.starts.push(self.points.len() as u64);
        self.ids.len() - 1
    }

    /// Appends slot `slot` of `other` — the arena-to-arena copy path used
    /// by compaction: one contiguous point-range `memcpy`, no intermediate
    /// [`Trajectory`] clone. Returns the new slot.
    pub fn push_from(&mut self, other: &TrajStore, slot: usize) -> usize {
        self.push(other.id(slot), other.points(slot))
    }

    /// Number of trajectories.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the store holds no trajectories.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Total number of sample points across all slots.
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// The id stored at `slot`.
    #[inline]
    pub fn id(&self, slot: usize) -> TrajId {
        self.ids[slot]
    }

    /// The points of `slot`, as a subslice of the shared arena.
    #[inline]
    pub fn points(&self, slot: usize) -> &[Point] {
        &self.points[self.starts[slot] as usize..self.starts[slot + 1] as usize]
    }

    /// Iterates `(id, points)` in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (TrajId, &[Point])> + '_ {
        (0..self.len()).map(move |i| (self.id(i), self.points(i)))
    }

    /// Materializes owned [`Trajectory`] values (the I/O edge).
    pub fn to_trajectories(&self) -> Vec<Trajectory> {
        self.iter()
            .map(|(id, pts)| Trajectory::new(id, pts.to_vec()))
            .collect()
    }

    /// The square region enclosing every point (see
    /// [`crate::Dataset::enclosing_square`] — both containers share one
    /// squaring rule), or `None` when no points exist.
    pub fn enclosing_square(&self) -> Option<Mbr> {
        crate::mbr::enclosing_square_of(self.points.iter())
    }

    /// Checks the cross-field invariant (`starts` is a monotone prefix
    /// table of length `ids.len() + 1` ending at `points.len()`).
    ///
    /// Stores built through the constructors always satisfy it; a store
    /// obtained by deserializing untrusted bytes should be validated
    /// before use — accessors index by the table and would panic on a
    /// malformed one.
    pub fn validate(&self) -> Result<(), crate::ModelError> {
        let ok = self.starts.len() == self.ids.len() + 1
            && self.starts.first() == Some(&0)
            && self.starts.last() == Some(&(self.points.len() as u64))
            && self.starts.windows(2).all(|w| w[0] <= w[1]);
        if ok {
            Ok(())
        } else {
            Err(crate::ModelError::CorruptStore)
        }
    }

    /// Approximate heap footprint in bytes (the three backing arrays;
    /// 0 when all three are views of a mapped archive).
    pub fn mem_bytes(&self) -> usize {
        self.ids.mem_bytes() + self.starts.mem_bytes() + self.points.mem_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn default_upholds_the_starts_invariant() {
        let mut s = TrajStore::default();
        assert!(s.validate().is_ok());
        s.push(1, &pts(&[(0.0, 0.0), (1.0, 1.0)]));
        assert!(s.validate().is_ok());
        assert_eq!(s.points(0).len(), 2);
    }

    #[test]
    fn empty_store() {
        let s = TrajStore::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.num_points(), 0);
        assert!(s.enclosing_square().is_none());
        assert!(s.iter().next().is_none());
    }

    #[test]
    fn push_and_read_back() {
        let mut s = TrajStore::new();
        let a = s.push(10, &pts(&[(0.0, 0.0), (1.0, 2.0)]));
        let b = s.push(11, &pts(&[(5.0, 5.0)]));
        let c = s.push(12, &[]); // empty trajectories are representable
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(s.len(), 3);
        assert_eq!(s.num_points(), 3);
        assert_eq!(s.id(1), 11);
        assert_eq!(s.points(0), pts(&[(0.0, 0.0), (1.0, 2.0)]).as_slice());
        assert_eq!(s.points(1), pts(&[(5.0, 5.0)]).as_slice());
        assert!(s.points(2).is_empty());
    }

    #[test]
    fn points_are_one_contiguous_allocation() {
        let mut s = TrajStore::new();
        s.push(0, &pts(&[(0.0, 0.0), (1.0, 0.0)]));
        s.push(1, &pts(&[(2.0, 0.0), (3.0, 0.0), (4.0, 0.0)]));
        let p0 = s.points(0);
        let p1 = s.points(1);
        // Slot 1 starts exactly where slot 0 ends.
        assert_eq!(p0.as_ptr().wrapping_add(p0.len()), p1.as_ptr());
    }

    #[test]
    fn roundtrip_through_trajectories() {
        let trajs = vec![
            Trajectory::new(3, pts(&[(0.0, 1.0), (2.0, 3.0)])),
            Trajectory::new(9, pts(&[(4.0, 5.0)])),
        ];
        let s = TrajStore::from_trajectories(&trajs);
        assert_eq!(s.to_trajectories(), trajs);
    }

    #[test]
    fn push_from_copies_ranges() {
        let mut a = TrajStore::new();
        a.push(1, &pts(&[(0.0, 0.0), (1.0, 1.0)]));
        a.push(2, &pts(&[(9.0, 9.0)]));
        let mut b = TrajStore::new();
        b.push_from(&a, 1);
        b.push_from(&a, 0);
        assert_eq!(b.id(0), 2);
        assert_eq!(b.id(1), 1);
        assert_eq!(b.points(1), a.points(0));
    }

    #[test]
    fn enclosing_square_matches_dataset() {
        let trajs = vec![Trajectory::new(
            0,
            pts(&[(0.0, 0.0), (10.0, 2.0)]),
        )];
        let d = crate::Dataset::from_trajectories(trajs.clone());
        let s = TrajStore::from_trajectories(&trajs);
        assert_eq!(s.enclosing_square(), d.enclosing_square());
    }

    #[test]
    fn validate_accepts_built_and_rejects_malformed() {
        let mut s = TrajStore::new();
        assert!(s.validate().is_ok());
        s.push(1, &pts(&[(0.0, 0.0), (1.0, 1.0)]));
        s.push(2, &pts(&[(2.0, 2.0)]));
        assert!(s.validate().is_ok());
        // A malformed offset table (as hostile deserialization could
        // produce) must be rejected instead of panicking later.
        let json = r#"{"ids":[1],"starts":[0,99],"points":[{"x":0.0,"y":0.0}]}"#;
        let bad: TrajStore = serde_json::from_str(json).unwrap();
        assert_eq!(bad.validate(), Err(crate::ModelError::CorruptStore));
    }

    #[test]
    fn serde_roundtrip() {
        let mut s = TrajStore::new();
        s.push(4, &pts(&[(1.0, 2.0), (3.0, 4.0)]));
        let json = serde_json::to_string(&s).unwrap();
        let back: TrajStore = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn mem_bytes_nonzero() {
        let mut s = TrajStore::new();
        s.push(0, &pts(&[(0.0, 0.0)]));
        assert!(s.mem_bytes() >= std::mem::size_of::<Point>());
    }
}
