use std::fmt;

/// Errors produced when constructing or validating model types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A trajectory contained a non-finite coordinate.
    NonFiniteCoordinate {
        /// Trajectory id containing the bad point.
        traj_id: u64,
    },
    /// A dataset operation referenced an unknown trajectory id.
    UnknownTrajectory {
        /// The id that was not found.
        traj_id: u64,
    },
    /// A configuration value was out of its valid range.
    InvalidConfig(String),
    /// A deserialized [`crate::TrajStore`] violated its offset-table
    /// invariant.
    CorruptStore,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NonFiniteCoordinate { traj_id } => {
                write!(f, "trajectory {traj_id} contains a non-finite coordinate")
            }
            ModelError::UnknownTrajectory { traj_id } => {
                write!(f, "unknown trajectory id {traj_id}")
            }
            ModelError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ModelError::CorruptStore => {
                write!(f, "trajectory store offset table is inconsistent")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ModelError::NonFiniteCoordinate { traj_id: 3 }.to_string(),
            "trajectory 3 contains a non-finite coordinate"
        );
        assert_eq!(
            ModelError::UnknownTrajectory { traj_id: 9 }.to_string(),
            "unknown trajectory id 9"
        );
        assert_eq!(
            ModelError::InvalidConfig("k must be > 0".into()).to_string(),
            "invalid configuration: k must be > 0"
        );
    }
}
