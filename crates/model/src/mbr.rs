use crate::Point;
use serde::{Deserialize, Serialize};

/// An axis-aligned minimum bounding rectangle.
///
/// Used by the grid (`repose-zorder`), the R-tree substrate of the DFT
/// baseline, and the DITA baseline's pivot MBRs. An `Mbr` is always
/// non-degenerate in the sense `min.x <= max.x && min.y <= max.y` when built
/// through the provided constructors.
/// `repr(C)` so an `Mbr` embedded in an archived summary record has a
/// defined, build-independent byte layout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[repr(C)]
pub struct Mbr {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Mbr {
    /// Creates an MBR from two corner points, normalizing the corner order.
    pub fn new(a: Point, b: Point) -> Self {
        Mbr {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The degenerate MBR covering a single point.
    pub fn from_point(p: Point) -> Self {
        Mbr { min: p, max: p }
    }

    /// Builds the tightest MBR enclosing all `points`.
    ///
    /// Returns `None` for an empty slice.
    pub fn from_points(points: &[Point]) -> Option<Self> {
        let first = points.first()?;
        let mut mbr = Mbr::from_point(*first);
        for p in &points[1..] {
            mbr.expand(*p);
        }
        Some(mbr)
    }

    /// An "empty" MBR that acts as the identity for [`Mbr::union`]:
    /// expanding it with any point yields that point's MBR.
    pub fn empty() -> Self {
        Mbr {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Returns `true` if this is the identity element from [`Mbr::empty`].
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Grows the MBR in place to cover `p`.
    pub fn expand(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// The smallest MBR covering both `self` and `other`.
    pub fn union(&self, other: &Mbr) -> Mbr {
        Mbr {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Whether the closed rectangles intersect.
    pub fn intersects(&self, other: &Mbr) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Whether `p` lies inside the closed rectangle.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether `other` is fully contained in `self` (closed containment).
    pub fn contains_mbr(&self, other: &Mbr) -> bool {
        self.contains(other.min) && self.contains(other.max)
    }

    /// Rectangle width (x span).
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Rectangle height (y span).
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Rectangle area.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    pub fn center(&self) -> Point {
        self.min.midpoint(&self.max)
    }

    /// Minimum Euclidean distance from `p` to the rectangle
    /// (zero when `p` is inside).
    ///
    /// The DTW lower bound of the paper (Eq. 15) uses this as `d'(q_i, g_j)`,
    /// the distance between a query point and a grid cell.
    pub fn min_dist(&self, p: Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Maximum Euclidean distance from `p` to any point of the rectangle.
    pub fn max_dist(&self, p: Point) -> f64 {
        let dx = (p.x - self.min.x).abs().max((p.x - self.max.x).abs());
        let dy = (p.y - self.min.y).abs().max((p.y - self.max.y).abs());
        (dx * dx + dy * dy).sqrt()
    }

    /// Minimum Euclidean distance between two rectangles (zero if they
    /// intersect).
    pub fn min_dist_mbr(&self, other: &Mbr) -> f64 {
        let dx = (self.min.x - other.max.x).max(0.0).max(other.min.x - self.max.x);
        let dy = (self.min.y - other.max.y).max(0.0).max(other.min.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }
}

/// The square region with side `max(width, height)` centered on the
/// points' tight bounding box — the region `A` of Section III-A. `None`
/// when `points` yields nothing.
///
/// Shared by [`crate::Dataset::enclosing_square`] and
/// [`crate::TrajStore::enclosing_square`], so the squaring rule cannot
/// drift between the two containers.
pub(crate) fn enclosing_square_of<'a>(points: impl Iterator<Item = &'a Point>) -> Option<Mbr> {
    let mut mbr = Mbr::empty();
    for p in points {
        mbr.expand(*p);
    }
    if mbr.is_empty() {
        return None;
    }
    let side = mbr.width().max(mbr.height());
    let c = mbr.center();
    let half = side * 0.5;
    Some(Mbr::new(
        Point::new(c.x - half, c.y - half),
        Point::new(c.x + half, c.y + half),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbr(x0: f64, y0: f64, x1: f64, y1: f64) -> Mbr {
        Mbr::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn new_normalizes_corners() {
        let m = Mbr::new(Point::new(5.0, 1.0), Point::new(2.0, 4.0));
        assert_eq!(m.min, Point::new(2.0, 1.0));
        assert_eq!(m.max, Point::new(5.0, 4.0));
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [
            Point::new(1.0, 2.0),
            Point::new(-3.0, 5.0),
            Point::new(4.0, 0.5),
        ];
        let m = Mbr::from_points(&pts).unwrap();
        for p in pts {
            assert!(m.contains(p));
        }
        assert_eq!(m.min, Point::new(-3.0, 0.5));
        assert_eq!(m.max, Point::new(4.0, 5.0));
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(Mbr::from_points(&[]).is_none());
    }

    #[test]
    fn empty_is_union_identity() {
        let e = Mbr::empty();
        assert!(e.is_empty());
        let m = mbr(0.0, 0.0, 1.0, 1.0);
        assert_eq!(e.union(&m), m);
        assert_eq!(m.union(&e), m);
    }

    #[test]
    fn union_covers_both() {
        let a = mbr(0.0, 0.0, 1.0, 1.0);
        let b = mbr(2.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert!(u.contains_mbr(&a));
        assert!(u.contains_mbr(&b));
    }

    #[test]
    fn intersects_is_symmetric_and_correct() {
        let a = mbr(0.0, 0.0, 2.0, 2.0);
        let b = mbr(1.0, 1.0, 3.0, 3.0);
        let c = mbr(5.0, 5.0, 6.0, 6.0);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        // Touching edges count as intersecting (closed rectangles).
        let d = mbr(2.0, 0.0, 4.0, 2.0);
        assert!(a.intersects(&d));
    }

    #[test]
    fn min_dist_inside_is_zero() {
        let m = mbr(0.0, 0.0, 2.0, 2.0);
        assert_eq!(m.min_dist(Point::new(1.0, 1.0)), 0.0);
        assert_eq!(m.min_dist(Point::new(0.0, 0.0)), 0.0);
    }

    #[test]
    fn min_dist_outside() {
        let m = mbr(0.0, 0.0, 2.0, 2.0);
        assert_eq!(m.min_dist(Point::new(5.0, 2.0)), 3.0);
        assert_eq!(m.min_dist(Point::new(5.0, 6.0)), 5.0); // 3-4-5 triangle
    }

    #[test]
    fn max_dist_reaches_far_corner() {
        let m = mbr(0.0, 0.0, 2.0, 2.0);
        // farthest corner from (0,0)-side point is (2,2)
        assert_eq!(m.max_dist(Point::new(-1.0, -1.0)), (18.0f64).sqrt());
    }

    #[test]
    fn min_dist_mbr_zero_when_overlapping() {
        let a = mbr(0.0, 0.0, 2.0, 2.0);
        let b = mbr(1.0, 1.0, 3.0, 3.0);
        assert_eq!(a.min_dist_mbr(&b), 0.0);
        let c = mbr(5.0, 0.0, 6.0, 2.0);
        assert_eq!(a.min_dist_mbr(&c), 3.0);
    }

    #[test]
    fn center_and_area() {
        let m = mbr(0.0, 0.0, 4.0, 2.0);
        assert_eq!(m.center(), Point::new(2.0, 1.0));
        assert_eq!(m.area(), 8.0);
        assert_eq!(m.width(), 4.0);
        assert_eq!(m.height(), 2.0);
    }
}
