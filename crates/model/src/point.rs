use serde::{Deserialize, Serialize};

/// A two-dimensional sample point (longitude, latitude) of a trajectory.
///
/// The paper treats coordinates as planar and uses the Euclidean distance
/// between points (Definition 2); we follow that convention.
///
/// `repr(C)` guarantees the `x, y` field order in memory, so a contiguous
/// `&[Point]` is exactly an interleaved `x0 y0 x1 y1 …` `f64` sequence —
/// the layout the SIMD kernels' packed coordinate loads rely on.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[repr(C)]
pub struct Point {
    /// Longitude (x coordinate).
    pub x: f64,
    /// Latitude (y coordinate).
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to another point.
    ///
    /// Cheaper than [`Point::dist`]; prefer it for comparisons.
    #[inline]
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Component-wise midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Returns `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

// SAFETY: `repr(C)`, two `f64` fields, no padding, any bit pattern is a
// valid (if possibly non-finite) point — byte-reinterpretable from a
// mapped archive section.
unsafe impl repose_succinct::Pod for Point {}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
    }

    #[test]
    fn dist_is_symmetric() {
        let a = Point::new(1.5, -2.25);
        let b = Point::new(-0.5, 7.0);
        assert_eq!(a.dist(&b), b.dist(&a));
    }

    #[test]
    fn dist_to_self_is_zero() {
        let a = Point::new(12.0, 9.5);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 6.0);
        assert_eq!(a.midpoint(&b), Point::new(1.0, 3.0));
    }

    #[test]
    fn tuple_conversions_roundtrip() {
        let p: Point = (1.0, 2.0).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.0, 2.0));
    }

    #[test]
    fn is_finite_detects_nan_and_inf() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }
}
