//! Core trajectory data model for the REPOSE reproduction.
//!
//! This crate defines the geometric primitives ([`Point`], [`Mbr`], [`Segment`]),
//! the [`Trajectory`] type, and the [`Dataset`] container together with the
//! preprocessing rules the paper applies (drop trajectories shorter than 10
//! points, split trajectories longer than 1,000 points).
//!
//! Everything downstream — the distance measures, the z-order discretization,
//! the RP-Trie, and the distributed framework — is built on these types.
//!
//! ```
//! use repose_model::{Dataset, Point, Trajectory};
//!
//! let trip = Trajectory::new(7, vec![Point::new(0.0, 0.0), Point::new(1.0, 2.0)]);
//! assert_eq!(trip.len(), 2);
//!
//! let mut dataset = Dataset::new();
//! dataset.push(trip);
//! assert_eq!(dataset.len(), 1);
//! let square = dataset.enclosing_square().expect("non-empty dataset");
//! assert!(square.contains(Point::new(1.0, 2.0)));
//! ```

#![warn(missing_docs)]

mod dataset;
mod error;
pub mod io;
mod mbr;
mod point;
mod segment;
mod store;
mod trajectory;
pub mod wire;

pub use dataset::{Dataset, DatasetStats, PreprocessConfig};
pub use error::ModelError;
pub use mbr::Mbr;
pub use point::Point;
pub use segment::Segment;
pub use store::TrajStore;
pub use trajectory::{TrajId, Trajectory};
