use crate::{Mbr, ModelError, TrajId, Trajectory};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Preprocessing rules from Section VII-A of the paper: "we remove the
/// trajectories with length smaller than 10, and we split the trajectories
/// with length larger than 1,000 into multiple trajectories".
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PreprocessConfig {
    /// Trajectories with fewer points are dropped (paper: 10).
    pub min_len: usize,
    /// Trajectories with more points are split (paper: 1000).
    pub max_len: usize,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig { min_len: 10, max_len: 1000 }
    }
}

/// Summary statistics mirroring Table III of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of trajectories.
    pub cardinality: usize,
    /// Average number of points per trajectory.
    pub avg_len: f64,
    /// Width and height of the spatial span (degrees in the paper).
    pub spatial_span: (f64, f64),
    /// Total number of sample points.
    pub total_points: usize,
    /// Approximate in-memory size in bytes.
    pub mem_bytes: usize,
}

/// An in-memory trajectory dataset `D = {τ1, ..., τN}`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    trajectories: Vec<Trajectory>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Wraps a vector of trajectories.
    pub fn from_trajectories(trajectories: Vec<Trajectory>) -> Self {
        Dataset { trajectories }
    }

    /// Read-only view of the trajectories.
    pub fn trajectories(&self) -> &[Trajectory] {
        &self.trajectories
    }

    /// Consumes the dataset, yielding its trajectories.
    pub fn into_trajectories(self) -> Vec<Trajectory> {
        self.trajectories
    }

    /// Adds a trajectory.
    pub fn push(&mut self, t: Trajectory) {
        self.trajectories.push(t);
    }

    /// Number of trajectories.
    pub fn len(&self) -> usize {
        self.trajectories.len()
    }

    /// Whether the dataset holds no trajectories.
    pub fn is_empty(&self) -> bool {
        self.trajectories.is_empty()
    }

    /// Looks a trajectory up by id (linear scan; build an id map for bulk
    /// lookups).
    pub fn get(&self, id: TrajId) -> Option<&Trajectory> {
        self.trajectories.iter().find(|t| t.id == id)
    }

    /// Builds a `TrajId -> index` map for O(1) id lookups.
    pub fn id_index(&self) -> HashMap<TrajId, usize> {
        self.trajectories
            .iter()
            .enumerate()
            .map(|(i, t)| (t.id, i))
            .collect()
    }

    /// Validates that all coordinates are finite.
    pub fn validate(&self) -> Result<(), ModelError> {
        for t in &self.trajectories {
            if !t.is_finite() {
                return Err(ModelError::NonFiniteCoordinate { traj_id: t.id });
            }
        }
        Ok(())
    }

    /// Applies the paper's preprocessing (drop short, split long) and
    /// reassigns contiguous ids `0..N`.
    pub fn preprocess(self, cfg: PreprocessConfig) -> Dataset {
        let mut out = Vec::with_capacity(self.trajectories.len());
        let mut next_id: TrajId = 0;
        for t in self.trajectories {
            if t.len() < cfg.min_len {
                continue;
            }
            if t.len() > cfg.max_len {
                let (chunks, nid) = t.split(cfg.max_len, next_id);
                next_id = nid;
                // chunks shorter than min_len (the tail) are dropped too
                out.extend(chunks.into_iter().filter(|c| c.len() >= cfg.min_len));
            } else {
                out.push(Trajectory::new(next_id, t.points));
                next_id += 1;
            }
        }
        // splitting may leave id gaps when tails were dropped; renumber
        for (i, t) in out.iter_mut().enumerate() {
            t.id = i as TrajId;
        }
        Dataset { trajectories: out }
    }

    /// The square region `A` with side length `U` that encloses all
    /// trajectories (Section III-A). Returns the tight MBR expanded to a
    /// square, or `None` for an empty dataset.
    pub fn enclosing_square(&self) -> Option<Mbr> {
        crate::mbr::enclosing_square_of(self.trajectories.iter().flat_map(|t| t.points.iter()))
    }

    /// Computes Table III style statistics.
    pub fn stats(&self) -> DatasetStats {
        let cardinality = self.trajectories.len();
        let total_points: usize = self.trajectories.iter().map(Trajectory::len).sum();
        let mut mbr = Mbr::empty();
        for t in &self.trajectories {
            for p in &t.points {
                mbr.expand(*p);
            }
        }
        let spatial_span = if mbr.is_empty() {
            (0.0, 0.0)
        } else {
            (mbr.width(), mbr.height())
        };
        let mem_bytes: usize = self.trajectories.iter().map(Trajectory::mem_bytes).sum();
        DatasetStats {
            cardinality,
            avg_len: if cardinality == 0 {
                0.0
            } else {
                total_points as f64 / cardinality as f64
            },
            spatial_span,
            total_points,
            mem_bytes,
        }
    }
}

impl FromIterator<Trajectory> for Dataset {
    fn from_iter<I: IntoIterator<Item = Trajectory>>(iter: I) -> Self {
        Dataset { trajectories: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    fn traj(id: TrajId, n: usize) -> Trajectory {
        Trajectory::new(id, (0..n).map(|i| Point::new(i as f64, 0.0)).collect())
    }

    #[test]
    fn push_len_get() {
        let mut d = Dataset::new();
        assert!(d.is_empty());
        d.push(traj(5, 12));
        assert_eq!(d.len(), 1);
        assert!(d.get(5).is_some());
        assert!(d.get(6).is_none());
    }

    #[test]
    fn preprocess_drops_short() {
        let d = Dataset::from_trajectories(vec![traj(0, 5), traj(1, 12)]);
        let p = d.preprocess(PreprocessConfig::default());
        assert_eq!(p.len(), 1);
        assert_eq!(p.trajectories()[0].len(), 12);
        assert_eq!(p.trajectories()[0].id, 0); // renumbered
    }

    #[test]
    fn preprocess_splits_long() {
        let cfg = PreprocessConfig { min_len: 10, max_len: 100 };
        let d = Dataset::from_trajectories(vec![traj(0, 250)]);
        let p = d.preprocess(cfg);
        // 250 -> chunks of 100,100,50, all >= 10
        assert_eq!(p.len(), 3);
        let total: usize = p.trajectories().iter().map(Trajectory::len).sum();
        assert_eq!(total, 250);
        let ids: Vec<TrajId> = p.trajectories().iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn preprocess_drops_short_tail_chunks() {
        let cfg = PreprocessConfig { min_len: 10, max_len: 100 };
        // 205 points -> 100,100,5; the 5-point tail is dropped
        let d = Dataset::from_trajectories(vec![traj(0, 205)]);
        let p = d.preprocess(cfg);
        assert_eq!(p.len(), 2);
        let total: usize = p.trajectories().iter().map(Trajectory::len).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn enclosing_square_is_square_and_covers() {
        let d = Dataset::from_trajectories(vec![Trajectory::new(
            0,
            vec![Point::new(0.0, 0.0), Point::new(10.0, 2.0)],
        )]);
        let sq = d.enclosing_square().unwrap();
        assert!((sq.width() - sq.height()).abs() < 1e-12);
        assert!(sq.contains(Point::new(0.0, 0.0)));
        assert!(sq.contains(Point::new(10.0, 2.0)));
        assert_eq!(sq.width(), 10.0);
    }

    #[test]
    fn enclosing_square_empty_none() {
        assert!(Dataset::new().enclosing_square().is_none());
    }

    #[test]
    fn stats_match_table_iii_semantics() {
        let d = Dataset::from_trajectories(vec![traj(0, 10), traj(1, 20)]);
        let s = d.stats();
        assert_eq!(s.cardinality, 2);
        assert_eq!(s.total_points, 30);
        assert_eq!(s.avg_len, 15.0);
        assert_eq!(s.spatial_span, (19.0, 0.0));
        assert!(s.mem_bytes > 0);
    }

    #[test]
    fn stats_empty() {
        let s = Dataset::new().stats();
        assert_eq!(s.cardinality, 0);
        assert_eq!(s.avg_len, 0.0);
        assert_eq!(s.spatial_span, (0.0, 0.0));
    }

    #[test]
    fn validate_flags_nan() {
        let mut d = Dataset::new();
        d.push(Trajectory::new(3, vec![Point::new(f64::NAN, 0.0)]));
        assert_eq!(
            d.validate(),
            Err(ModelError::NonFiniteCoordinate { traj_id: 3 })
        );
    }

    #[test]
    fn id_index_maps_ids() {
        let d = Dataset::from_trajectories(vec![traj(10, 10), traj(20, 10)]);
        let idx = d.id_index();
        assert_eq!(idx[&10], 0);
        assert_eq!(idx[&20], 1);
    }
}
