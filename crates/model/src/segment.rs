use crate::{Mbr, Point, TrajId};
use serde::{Deserialize, Serialize};

/// A directed line segment of a trajectory, tagged with its origin.
///
/// The DFT baseline (Xie et al., PVLDB'17) indexes trajectories at segment
/// granularity; this type is its unit of storage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Trajectory the segment belongs to.
    pub traj_id: TrajId,
    /// Zero-based position of the segment within its trajectory.
    pub seg_idx: u32,
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates a segment.
    pub fn new(traj_id: TrajId, seg_idx: u32, a: Point, b: Point) -> Self {
        Segment { traj_id, seg_idx, a, b }
    }

    /// Bounding rectangle of the segment.
    pub fn mbr(&self) -> Mbr {
        Mbr::new(self.a, self.b)
    }

    /// Segment midpoint — the "centroid" DFT partitions by.
    pub fn centroid(&self) -> Point {
        self.a.midpoint(&self.b)
    }

    /// Segment length.
    pub fn length(&self) -> f64 {
        self.a.dist(&self.b)
    }

    /// Minimum Euclidean distance from point `p` to the segment.
    pub fn dist_point(&self, p: Point) -> f64 {
        let vx = self.b.x - self.a.x;
        let vy = self.b.y - self.a.y;
        let wx = p.x - self.a.x;
        let wy = p.y - self.a.y;
        let len_sq = vx * vx + vy * vy;
        if len_sq == 0.0 {
            return self.a.dist(&p);
        }
        let t = ((wx * vx + wy * vy) / len_sq).clamp(0.0, 1.0);
        let proj = Point::new(self.a.x + t * vx, self.a.y + t * vy);
        proj.dist(&p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(0, 0, Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn mbr_and_centroid() {
        let s = seg(0.0, 0.0, 4.0, 2.0);
        assert_eq!(s.centroid(), Point::new(2.0, 1.0));
        let m = s.mbr();
        assert_eq!(m.min, Point::new(0.0, 0.0));
        assert_eq!(m.max, Point::new(4.0, 2.0));
    }

    #[test]
    fn dist_point_projects_onto_interior() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.dist_point(Point::new(5.0, 3.0)), 3.0);
    }

    #[test]
    fn dist_point_clamps_to_endpoints() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.dist_point(Point::new(-3.0, 4.0)), 5.0);
        assert_eq!(s.dist_point(Point::new(13.0, 4.0)), 5.0);
    }

    #[test]
    fn degenerate_segment_is_point_distance() {
        let s = seg(1.0, 1.0, 1.0, 1.0);
        assert_eq!(s.length(), 0.0);
        assert_eq!(s.dist_point(Point::new(4.0, 5.0)), 5.0);
    }

    #[test]
    fn dist_point_zero_on_segment() {
        let s = seg(0.0, 0.0, 4.0, 4.0);
        assert!(s.dist_point(Point::new(2.0, 2.0)) < 1e-12);
    }
}
