//! Little-endian wire primitives for the durability layer's on-disk
//! records.
//!
//! Everything the write-ahead log persists bottoms out in four scalar
//! shapes — `u32`, `u64`, `f64`, and [`Point`] runs — encoded here in one
//! place so the encoder and decoder can never disagree on widths or byte
//! order. Floats are encoded via [`f64::to_bits`], so a decode returns the
//! *bit-identical* value that was written: NaN payloads, signed zeros, and
//! subnormals all survive a roundtrip, which the exactness contract of the
//! query path (bitwise-equal distances after recovery) depends on.
//!
//! Decoders are cursor-style: each `read_*` consumes from the front of a
//! mutable byte-slice reference and returns `None` on underrun instead of
//! panicking — a truncated (torn) record must be *detected*, never trip an
//! index panic.

use crate::Point;

/// Appends a `u32` in little-endian order.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern (little-endian).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Appends a point run: a `u32` count followed by each point's `x`, `y`
/// bit patterns.
pub fn put_points(buf: &mut Vec<u8>, points: &[Point]) {
    put_u32(buf, points.len() as u32);
    for p in points {
        put_f64(buf, p.x);
        put_f64(buf, p.y);
    }
}

/// Reads a `u32`, advancing the cursor; `None` on underrun.
pub fn read_u32(cur: &mut &[u8]) -> Option<u32> {
    let (head, rest) = cur.split_first_chunk::<4>()?;
    *cur = rest;
    Some(u32::from_le_bytes(*head))
}

/// Reads a `u64`, advancing the cursor; `None` on underrun.
pub fn read_u64(cur: &mut &[u8]) -> Option<u64> {
    let (head, rest) = cur.split_first_chunk::<8>()?;
    *cur = rest;
    Some(u64::from_le_bytes(*head))
}

/// Reads an `f64` bit pattern, advancing the cursor; `None` on underrun.
pub fn read_f64(cur: &mut &[u8]) -> Option<f64> {
    read_u64(cur).map(f64::from_bits)
}

/// Reads a point run written by [`put_points`]; `None` on underrun or an
/// impossible count (counts larger than the remaining bytes could hold are
/// rejected before any allocation, so a corrupt length cannot trigger a
/// huge reservation).
pub fn read_points(cur: &mut &[u8]) -> Option<Vec<Point>> {
    let n = read_u32(cur)? as usize;
    if cur.len() < n.checked_mul(16)? {
        return None;
    }
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        let x = read_f64(cur)?;
        let y = read_f64(cur)?;
        points.push(Point::new(x, y));
    }
    Some(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 7);
        put_f64(&mut buf, -0.0);
        let mut cur = buf.as_slice();
        assert_eq!(read_u32(&mut cur), Some(0xDEAD_BEEF));
        assert_eq!(read_u64(&mut cur), Some(u64::MAX - 7));
        assert_eq!(read_f64(&mut cur).map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert!(cur.is_empty());
    }

    #[test]
    fn floats_roundtrip_bitwise() {
        for v in [
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::MIN_POSITIVE / 2.0, // subnormal
            1.000_000_000_000_000_2,
        ] {
            let mut buf = Vec::new();
            put_f64(&mut buf, v);
            let mut cur = buf.as_slice();
            assert_eq!(read_f64(&mut cur).unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn points_roundtrip() {
        let pts = vec![Point::new(1.5, -2.5), Point::new(0.0, 64.0)];
        let mut buf = Vec::new();
        put_points(&mut buf, &pts);
        let mut cur = buf.as_slice();
        assert_eq!(read_points(&mut cur), Some(pts));
        assert!(cur.is_empty());
    }

    #[test]
    fn underrun_is_none_not_panic() {
        let mut buf = Vec::new();
        put_points(&mut buf, &[Point::new(1.0, 2.0)]);
        for cut in 0..buf.len() {
            let mut cur = &buf[..cut];
            assert_eq!(read_points(&mut cur), None, "cut at {cut}");
        }
    }

    #[test]
    fn hostile_count_is_rejected_without_allocation() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX); // claims ~4 billion points, provides none
        let mut cur = buf.as_slice();
        assert_eq!(read_points(&mut cur), None);
    }
}
