//! The fault matrix: the sharded scatter-gather path against a healthy
//! network and against every deterministic network fault, compared
//! bitwise (distance multisets) with the single-node serving path.
//!
//! Three contracts:
//!
//! 1. **All-healthy identity** — for all six measures, the cluster's
//!    answer is bitwise identical to the single-node pooled path.
//! 2. **Single faults** — drop, delay-past-deadline, duplicate, reorder,
//!    crash, partition each yield either the exact answer (retries and
//!    hedges recovered it) or an answer correctly flagged `degraded` with
//!    an accurate `shards_failed` — never a silently truncated "exact"
//!    one. Degraded answers are never cached.
//! 3. **Leader crash mid-burst** — a leader crash during a write burst
//!    loses zero acknowledged writes: after follower promotion, queries
//!    match a shadow service that applied every acknowledged write.

use repose::{Repose, ReposeConfig};
use repose_distance::{Measure, MeasureParams};
use repose_model::{Dataset, Trajectory};
use repose_service::{ReposeService, ServiceConfig};
use repose_shard::{
    NetFault, NetFaultPlan, ShardCluster, ShardClusterConfig, Transport, WorkerConfig,
};
use repose_testkit::{sorted_dist_bits, tie_dataset, tie_queries, tie_traj};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const SHARDS: usize = 3;

fn repose_config(measure: Measure) -> ReposeConfig {
    ReposeConfig::new(measure)
        .with_partitions(4)
        .with_delta(0.7)
        .with_params(MeasureParams::with_eps(0.5))
}

/// Cluster knobs tight enough that fault recovery stays sub-second but
/// loose enough that a healthy run never trips a spurious timeout.
fn cluster_config(replicate: bool) -> ShardClusterConfig {
    ShardClusterConfig {
        shards: SHARDS,
        replicate,
        attempt_timeout: Duration::from_millis(400),
        max_retries: 2,
        hedge_floor: Duration::from_millis(50),
        write_timeout: Duration::from_millis(300),
        write_retries: 10,
        worker: WorkerConfig {
            heartbeat_every: Duration::from_millis(15),
            heartbeat_timeout: Duration::from_millis(100),
            ..WorkerConfig::default()
        },
        ..ShardClusterConfig::default()
    }
}

fn single_node(dataset: Dataset, measure: Measure) -> ReposeService {
    ReposeService::with_config(
        Repose::build(&dataset, repose_config(measure)),
        ServiceConfig { cache_capacity: 0, ..ServiceConfig::default() },
    )
}

fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("repose-shard-{tag}-{}-{n}", std::process::id()))
}

/// Contract 1: with a healthy network the cluster answer is bitwise
/// identical to the single-node pooled path, for every measure; and the
/// repeat of a query is served from the coordinator cache, identically.
#[test]
fn all_healthy_matches_single_node_for_all_measures() {
    for &measure in Measure::ALL.iter() {
        let reference = single_node(tie_dataset(0..60), measure);
        let mut cluster = ShardCluster::build(
            tie_dataset(0..60),
            repose_config(measure),
            cluster_config(true),
            NetFaultPlan::new(),
            None,
        );
        for q in &tie_queries() {
            for k in [3usize, 9] {
                let want = reference.query(q, k).expect("single-node query");
                let got = cluster.query(q, k);
                assert!(!got.degraded, "{measure} k={k}: healthy run degraded");
                assert_eq!(got.shards_failed, 0, "{measure} k={k}");
                assert_eq!(
                    sorted_dist_bits(got.hits.iter().map(|h| h.dist)),
                    sorted_dist_bits(want.hits.iter().map(|h| h.dist)),
                    "{measure} k={k}: sharded answer diverged from single node"
                );
                let again = cluster.query(q, k);
                assert!(again.cache_hit, "{measure} k={k}: exact answer not cached");
                assert_eq!(
                    sorted_dist_bits(again.hits.iter().map(|h| h.dist)),
                    sorted_dist_bits(want.hits.iter().map(|h| h.dist)),
                );
            }
        }
        cluster.shutdown();
    }
}

/// Runs one query under `fault` armed at `site` and checks the outcome
/// against the single-node reference: exact, or correctly degraded.
/// Returns the outcome for scenario-specific assertions.
fn run_fault_scenario(
    site: &str,
    fault: NetFault,
    after: u32,
    replicate: bool,
) -> (repose_shard::ShardOutcome, Vec<u64>, NetFaultPlan) {
    let measure = Measure::Hausdorff;
    let reference = single_node(tie_dataset(0..60), measure);
    let faults = NetFaultPlan::new();
    faults.arm(site, fault, after);
    let mut cluster = ShardCluster::build(
        tie_dataset(0..60),
        repose_config(measure),
        cluster_config(replicate),
        faults.clone(),
        None,
    );
    let q = &tie_queries()[0];
    let k = 9;
    let want = sorted_dist_bits(
        reference.query(q, k).expect("reference").hits.iter().map(|h| h.dist),
    );
    let got = cluster.query(q, k);
    assert!(
        got.degraded == (got.shards_failed > 0),
        "{site}: degraded flag and shards_failed disagree"
    );
    if !got.degraded {
        assert_eq!(
            sorted_dist_bits(got.hits.iter().map(|h| h.dist)),
            want,
            "{site}: non-degraded answer must be exact"
        );
    }
    // Degraded answers must never be served from the cache.
    if got.degraded {
        let again = cluster.query(q, k);
        assert!(!again.cache_hit, "{site}: degraded answer was cached");
    }
    cluster.shutdown();
    (got, want, faults)
}

/// A dropped reply costs an attempt, never correctness: the retry or
/// hedge earns the exact answer back.
#[test]
fn fault_drop_recovers_exactly() {
    let (out, want, faults) = run_fault_scenario("coord.rx", NetFault::Drop, 2, true);
    assert!(faults.any_fired(), "the drop never fired");
    assert!(!out.degraded, "a single drop must be survivable with a replica");
    assert_eq!(sorted_dist_bits(out.hits.iter().map(|h| h.dist)), want);
    assert!(
        out.retries + out.hedges > 0,
        "losing a reply message must have cost an attempt"
    );
}

/// A delay past the attempt deadline behaves like a slow shard: hedged or
/// retried, and exact either way.
#[test]
fn fault_delay_past_deadline_recovers_exactly() {
    let (out, want, faults) =
        run_fault_scenario("coord.rx", NetFault::Delay(Duration::from_millis(600)), 1, true);
    assert!(faults.any_fired(), "the delay never fired");
    assert!(!out.degraded);
    assert_eq!(sorted_dist_bits(out.hits.iter().map(|h| h.dist)), want);
}

/// A duplicated reply is absorbed by id-dedup: exact, no degradation.
#[test]
fn fault_duplicate_is_deduplicated() {
    let (out, want, faults) = run_fault_scenario("coord.rx", NetFault::Duplicate, 1, true);
    assert!(faults.any_fired(), "the duplicate never fired");
    assert!(!out.degraded);
    assert_eq!(out.shards_failed, 0);
    assert_eq!(sorted_dist_bits(out.hits.iter().map(|h| h.dist)), want);
}

/// A reordered reply (a `Done` can overtake its own hits) must not
/// truncate the answer: the hits-received-vs-`Done.hits_sent` accounting
/// keeps the shard incomplete until every hit landed.
#[test]
fn fault_reorder_never_truncates() {
    let (out, want, faults) = run_fault_scenario("coord.rx", NetFault::Reorder, 1, true);
    assert!(faults.any_fired(), "the reorder never fired");
    assert!(!out.degraded);
    assert_eq!(sorted_dist_bits(out.hits.iter().map(|h| h.dist)), want);
}

/// A crashed shard with a replica: the hedge/retry path reaches the
/// replica and the answer stays exact.
#[test]
fn fault_crash_with_replica_stays_exact() {
    let (out, want, faults) = run_fault_scenario("shard1", NetFault::Crash, 0, true);
    assert!(faults.any_fired(), "the crash never fired");
    assert!(!out.degraded, "a crashed leader must fail over to its replica");
    assert_eq!(sorted_dist_bits(out.hits.iter().map(|h| h.dist)), want);
    assert!(out.retries + out.hedges > 0, "failover must have cost an attempt");
}

/// A partitioned shard with a replica: same failover contract as a crash,
/// but the node stays alive behind the partition.
#[test]
fn fault_partition_with_replica_stays_exact() {
    let (out, want, faults) = run_fault_scenario("shard2", NetFault::Partition, 0, true);
    assert!(faults.any_fired(), "the partition never fired");
    assert!(!out.degraded);
    assert_eq!(sorted_dist_bits(out.hits.iter().map(|h| h.dist)), want);
}

/// A crashed shard with **no** replica exhausts its retries and degrades
/// honestly: `degraded` set, `shards_failed` accurate, and the partial
/// answer is exactly the merged answer of the surviving shards.
#[test]
fn fault_crash_without_replica_degrades_honestly() {
    let measure = Measure::Hausdorff;
    let faults = NetFaultPlan::new();
    faults.arm("shard1", NetFault::Crash, 0);
    let mut cluster = ShardCluster::build(
        tie_dataset(0..60),
        repose_config(measure),
        cluster_config(false),
        faults.clone(),
        None,
    );
    // The exact answer over the surviving shards' subsets.
    let survivors = Dataset::from_trajectories(
        tie_dataset(0..60)
            .into_trajectories()
            .into_iter()
            .filter(|t| (t.id % SHARDS as u64) != 1)
            .collect::<Vec<Trajectory>>(),
    );
    let reference = single_node(survivors, measure);
    let q = &tie_queries()[0];
    let k = 9;
    let out = cluster.query(q, k);
    assert!(faults.any_fired(), "the crash never fired");
    assert!(out.degraded, "an unreachable shard with no replica must degrade");
    assert_eq!(out.shards_failed, 1, "exactly one shard was lost");
    assert!(out.retries > 0, "degradation must come after the retry budget");
    assert_eq!(
        sorted_dist_bits(out.hits.iter().map(|h| h.dist)),
        sorted_dist_bits(
            reference.query(q, k).expect("survivor reference").hits.iter().map(|h| h.dist)
        ),
        "the partial answer must be exact over the surviving shards"
    );
    let again = cluster.query(q, k);
    assert!(!again.cache_hit, "a degraded answer must never be cached");
    cluster.shutdown();
}

/// Contract 3: a leader crash in the middle of a write burst loses zero
/// acknowledged writes. The follower promotes itself, the coordinator
/// adopts it, every burst write eventually acknowledges, and the
/// post-crash cluster answers bitwise-identically to a single-node shadow
/// that applied exactly the acknowledged writes.
#[test]
fn leader_crash_mid_burst_loses_no_acknowledged_write() {
    let measure = Measure::Hausdorff;
    let dir = fresh_dir("crash");
    let faults = NetFaultPlan::new();
    // Fires mid-burst: shard0 traffic includes heartbeats, upserts,
    // replication rounds and acks; a handful of writes land first.
    faults.arm("shard0", NetFault::Crash, 25);
    let mut cluster = ShardCluster::build(
        tie_dataset(0..60),
        repose_config(measure),
        cluster_config(true),
        faults.clone(),
        Some(&dir),
    );

    let shadow = single_node(tie_dataset(0..60), measure);
    let mut promotions = 0u32;
    for i in 0..24u64 {
        // Ids cycle through all shards; shard 0 takes every third write.
        let t = tie_traj(300 + i);
        let out = cluster
            .insert(t.clone())
            .unwrap_or_else(|e| panic!("write {i} must eventually ack: {e}"));
        if out.promoted {
            promotions += 1;
        }
        shadow.insert(t).expect("shadow insert");
    }
    for id in [301u64, 306, 312] {
        let out = cluster.remove(id).expect("remove must eventually ack");
        if out.promoted {
            promotions += 1;
        }
        shadow.remove(id).expect("shadow remove");
    }
    assert!(faults.any_fired(), "the leader crash never fired");
    assert!(
        cluster.transport().is_crashed(1),
        "shard0's original leader (node 1) must be dead"
    );
    assert!(promotions >= 1, "some write must have been acked by the promoted replica");
    assert_ne!(cluster.leader_of(0), 1, "the coordinator must have adopted the replica");

    for q in &tie_queries() {
        for k in [3usize, 9] {
            let got = cluster.query(q, k);
            assert!(!got.degraded, "the promoted replica must serve shard 0 exactly");
            let want = shadow.query(q, k).expect("shadow query");
            assert_eq!(
                sorted_dist_bits(got.hits.iter().map(|h| h.dist)),
                sorted_dist_bits(want.hits.iter().map(|h| h.dist)),
                "k={k}: an acknowledged write went missing after the crash"
            );
        }
    }
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Writes and reads against a healthy replicated cluster: log-before-ack
/// end to end, then exact reads that include the written data.
#[test]
fn healthy_writes_replicate_and_serve() {
    let measure = Measure::Frechet;
    let mut cluster = ShardCluster::build(
        tie_dataset(0..30),
        repose_config(measure),
        cluster_config(true),
        NetFaultPlan::new(),
        None,
    );
    let shadow = single_node(tie_dataset(0..30), measure);
    for i in 0..9u64 {
        let t = tie_traj(500 + i);
        let out = cluster.insert(t.clone()).expect("insert");
        assert!(!out.promoted, "no promotion on a healthy network");
        shadow.insert(t).expect("shadow insert");
    }
    cluster.remove(503).expect("remove");
    shadow.remove(503).expect("shadow remove");
    // Every shard's replica must have applied its leader's log.
    for shard in 0..SHARDS {
        assert_eq!(
            cluster.leader_service(shard).op_seq(),
            cluster.replica_service(shard).op_seq(),
            "shard {shard}: follower lag after acked writes"
        );
    }
    for q in &tie_queries() {
        let got = cluster.query(q, 5);
        let want = shadow.query(q, 5).expect("shadow");
        assert!(!got.degraded);
        assert_eq!(
            sorted_dist_bits(got.hits.iter().map(|h| h.dist)),
            sorted_dist_bits(want.hits.iter().map(|h| h.dist)),
        );
    }
    cluster.shutdown();
}
