//! The replication-log contract: a follower that applies a leader's
//! `Replicate` stream — including the duplicated, re-sent, overlapping
//! deliveries a hostile network produces — ends with a WAL **byte
//! identical** to the leader's, because `apply_replica` adopts the
//! leader's sequence numbers, skips duplicates without re-logging, and
//! refuses gaps instead of diverging.

use proptest::prelude::*;
use repose::{Repose, ReposeConfig};
use repose_distance::{Measure, MeasureParams};
use repose_durability::{DurabilityConfig, WalRecord};
use repose_model::{Point, Trajectory};
use repose_service::{ReposeService, ServiceConfig, ServiceError};
use repose_shard::{
    Loopback, Message, NetFault, NetFaultPlan, Role, ShardWorker, Transport, WorkerConfig,
};
use repose_testkit::{build_record, tie_dataset};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("repose-repl-{tag}-{}-{n}", std::process::id()))
}

fn durable_service(dir: &Path) -> ReposeService {
    let cfg = ReposeConfig::new(Measure::Hausdorff)
        .with_partitions(4)
        .with_delta(0.7)
        .with_params(MeasureParams::with_eps(0.5));
    ReposeService::try_with_config(
        Repose::build(&tie_dataset(0..10), cfg),
        ServiceConfig {
            cache_capacity: 0,
            pool_threads: 1,
            durability: Some(DurabilityConfig::new(dir)),
            ..ServiceConfig::default()
        },
    )
    .expect("durable service")
}

/// All WAL segment bytes under `dir`, concatenated in segment order.
fn wal_bytes(dir: &Path) -> Vec<u8> {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("journal dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    segments.sort();
    let mut bytes = Vec::new();
    for s in &segments {
        bytes.extend(std::fs::read(s).expect("segment"));
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The core property: however the leader's log is chunked and re-sent
    /// (overlapping suffixes, duplicate batches — exactly the worker's
    /// resend-the-unacked-suffix discipline under drops and duplications),
    /// the follower's WAL comes out byte-identical to the leader's.
    #[test]
    fn hostile_replicate_stream_yields_byte_identical_wal(
        ops in proptest::collection::vec(
            // (is_insert, id, points): finite coordinates, data records only.
            (any::<bool>(), 0u64..32, proptest::collection::vec(
                (-1.0e6f64..1.0e6, -1.0e6f64..1.0e6), 1..6)),
            1..16),
        // For each delivery round: how far to rewind before resending.
        rewinds in proptest::collection::vec(0usize..8, 1..6),
    ) {
        let ldir = fresh_dir("leader");
        let fdir = fresh_dir("follower");
        let leader = durable_service(&ldir);
        let follower = durable_service(&fdir);

        // Drive the leader; reconstruct the exact records it logged.
        let mut log: Vec<WalRecord> = Vec::new();
        for (is_insert, id, pts) in &ops {
            let points: Vec<Point> =
                pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            if *is_insert {
                let seq = leader
                    .insert_acked(Trajectory::new(*id, points.clone()))
                    .expect("leader insert");
                log.push(WalRecord::Upsert { seq, id: *id, points });
            } else {
                let seq = leader.remove_acked(*id).expect("leader remove");
                log.push(WalRecord::Delete { seq, id: *id });
            }
        }

        // Deliver to the follower in overlapping, duplicated chunks: each
        // round rewinds a few records and replays to some later point —
        // the worker's whole-suffix resend under retries, concentrated.
        let mut delivered = 0usize;
        let mut round = 0usize;
        while delivered < log.len() {
            let rewind = rewinds[round % rewinds.len()].min(delivered);
            let until = (delivered + 1 + round % 3).min(log.len());
            for r in &log[delivered - rewind..until] {
                let fresh = follower.apply_replica(r).expect("no gaps in a resent prefix");
                prop_assert_eq!(fresh, r.seq() > delivered as u64, "seq {}", r.seq());
            }
            delivered = until;
            round += 1;
        }
        // One full duplicate replay of everything: all skipped, no re-log.
        for r in &log {
            prop_assert_eq!(follower.apply_replica(r).expect("duplicate replay"), false);
        }

        prop_assert_eq!(follower.op_seq(), leader.op_seq());
        let (lb, fb) = (wal_bytes(&ldir), wal_bytes(&fdir));
        prop_assert_eq!(lb, fb, "follower WAL diverged from leader WAL");
        drop(leader);
        drop(follower);
        std::fs::remove_dir_all(&ldir).ok();
        std::fs::remove_dir_all(&fdir).ok();
    }

    /// Records generated over the full raw bit-pattern space (shared
    /// generator with the durability property suite) roundtrip the
    /// protocol's `Replicate` frame bit-exactly — the wire cannot corrupt
    /// what replication then logs.
    #[test]
    fn replicate_frames_carry_records_bit_exactly(
        kinds in proptest::collection::vec((any::<u8>(), any::<u64>(),
            proptest::collection::vec((any::<u64>(), any::<u64>()), 0..5)), 1..8),
    ) {
        let records: Vec<WalRecord> = kinds
            .iter()
            .enumerate()
            .map(|(i, (kind, id, bits))| build_record(*kind, i as u64 + 1, *id, bits))
            .collect();
        let msg = Message::Replicate { records: records.clone() };
        let bytes = msg.encode_frame();
        let mut cur = bytes.as_slice();
        let back = Message::decode_frame(&mut cur)
            .expect("decode")
            .expect("one frame");
        prop_assert!(cur.is_empty());
        match back {
            // NaN coordinates make float equality useless; the encoded
            // bytes are the bit-exact comparison.
            Message::Replicate { records: got } => prop_assert_eq!(
                got.iter().map(WalRecord::to_bytes).collect::<Vec<_>>(),
                records.iter().map(WalRecord::to_bytes).collect::<Vec<_>>()
            ),
            other => prop_assert!(false, "wrong variant: {:?}", other),
        }
    }
}

/// A gap (lost predecessor) is refused with the typed error and leaves
/// the follower unchanged, so the leader's suffix-resend can heal it.
#[test]
fn replication_gap_is_refused_not_absorbed() {
    let dir = fresh_dir("gap");
    let follower = durable_service(&dir);
    let r1 = WalRecord::Delete { seq: 1, id: 3 };
    let r3 = WalRecord::Delete { seq: 3, id: 4 };
    assert!(follower.apply_replica(&r1).expect("in sequence"));
    let err = follower.apply_replica(&r3).expect_err("a gap must be refused");
    assert!(
        matches!(err, ServiceError::ReplicationGap { expected: 2, got: 3 }),
        "wrong error: {err}"
    );
    assert_eq!(follower.op_seq(), 1, "a refused record must not advance the sequence");
    // The healing resend: 2 then 3 apply cleanly.
    assert!(follower.apply_replica(&WalRecord::Delete { seq: 2, id: 4 }).unwrap());
    assert!(follower.apply_replica(&r3).unwrap());
    drop(follower);
    std::fs::remove_dir_all(&dir).ok();
}

/// End to end through the real worker pair and transport, with the
/// replication link armed hostile (a duplicated and a reordered frame):
/// every write acks, and the two WALs come out byte-identical.
#[test]
fn worker_replication_survives_dup_and_reorder_byte_identically() {
    let ldir = fresh_dir("wl");
    let fdir = fresh_dir("wf");
    // Heartbeats are pushed past the test horizon below, so the fault
    // countdowns hit deterministic frames: replica0.rx sees the startup
    // heartbeat then only Replicates (hit 1 = Replicate for write 1,
    // duplicated — so write 1 acks twice); shard0.rx sees Upserts and
    // Acks alternating, shifted by that double-ack (hit 4 = the Ack for
    // write 2, held back until the leader's resend produces the next Ack
    // on the same link).
    let faults = NetFaultPlan::new();
    faults.arm("replica0.rx", NetFault::Duplicate, 1);
    faults.arm("shard0.rx", NetFault::Reorder, 4);
    let transport = Arc::new(Loopback::new(
        vec!["coord".into(), "shard0".into(), "replica0".into()],
        faults.clone(),
    ));
    let leader_svc = Arc::new(durable_service(&ldir));
    let follower_svc = Arc::new(durable_service(&fdir));
    let wcfg = WorkerConfig {
        heartbeat_every: Duration::from_secs(30),
        heartbeat_timeout: Duration::from_secs(60),
        ..WorkerConfig::default()
    };
    let h1 = {
        let w = ShardWorker::new(
            1,
            0,
            Role::Leader { follower: Some(2) },
            Arc::clone(&leader_svc),
            Arc::clone(&transport) as Arc<dyn Transport>,
            wcfg,
        );
        std::thread::spawn(move || w.run())
    };
    let h2 = {
        let w = ShardWorker::new(
            2,
            0,
            Role::Follower { leader: 1 },
            Arc::clone(&follower_svc),
            Arc::clone(&transport) as Arc<dyn Transport>,
            wcfg,
        );
        std::thread::spawn(move || w.run())
    };

    for i in 0..8u64 {
        let wid = i + 1;
        let points = vec![Point::new(i as f64, 1.0), Point::new(i as f64 + 1.0, 2.0)];
        transport.send(0, 1, &Message::Upsert { wid, id: 100 + i, points });
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            assert!(
                std::time::Instant::now() < deadline,
                "write {wid} never acknowledged"
            );
            match transport.recv_timeout(0, Duration::from_millis(50)) {
                Some((_, Message::WriteOk { wid: w, .. })) if w == wid => break,
                Some((_, Message::WriteRefused { wid: w, reason })) if w == wid => {
                    panic!("write {wid} refused: {reason:?}")
                }
                _ => {}
            }
        }
    }
    assert!(faults.any_fired(), "the armed replication faults never fired");
    transport.shutdown_all();
    h1.join().expect("leader worker");
    h2.join().expect("follower worker");
    assert_eq!(leader_svc.op_seq(), follower_svc.op_seq());
    assert_eq!(
        wal_bytes(&ldir),
        wal_bytes(&fdir),
        "follower WAL diverged from leader WAL under dup+reorder"
    );
    std::fs::remove_dir_all(&ldir).ok();
    std::fs::remove_dir_all(&fdir).ok();
}
