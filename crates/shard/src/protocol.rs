//! The binary shard protocol: every byte that crosses the [`crate::Transport`]
//! is one [`Message`] framed exactly like a WAL record —
//! `[len u32][crc u32][payload]` with the payload starting at a tag byte —
//! built on the same [`repose_model::wire`] primitives the durability
//! layer persists with, so the encoder and decoder can never disagree on
//! widths, byte order, or float bit patterns.
//!
//! Distances and points travel as IEEE-754 bit patterns
//! ([`repose_model::wire::put_f64`]), which is what lets the fault-matrix
//! suite demand *bitwise* identity between sharded and single-node
//! answers: serialization is exact, never a rounding step.
//!
//! Decoding is hostile-input safe: underruns, bad checksums, impossible
//! counts, and unknown tags all surface as a typed [`ProtocolError`] —
//! never a panic, never a silently skipped field.

use repose_distance::Measure;
use repose_durability::{crc32, DecodeError, WalRecord};
use repose_model::wire::{
    put_f64, put_points, put_u32, put_u64, read_f64, read_points, read_u32, read_u64,
};
use repose_model::{Point, TrajId};

/// Why a shard write was refused (carried by [`Message::WriteRefused`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefusalReason {
    /// The receiving node is a follower that has not been promoted; the
    /// client should retry against the leader (or wait for promotion).
    NotLeader,
    /// The leader logged the write but could not confirm replication to
    /// its follower within its retry budget; the write is **not**
    /// acknowledged (it will be re-replicated before any later ack).
    ReplicationUnavailable,
    /// The node's local durability layer failed; the write was not
    /// acknowledged.
    Durability,
}

impl RefusalReason {
    fn to_u8(self) -> u8 {
        match self {
            RefusalReason::NotLeader => 0,
            RefusalReason::ReplicationUnavailable => 1,
            RefusalReason::Durability => 2,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(RefusalReason::NotLeader),
            1 => Some(RefusalReason::ReplicationUnavailable),
            2 => Some(RefusalReason::Durability),
            _ => None,
        }
    }
}

/// Encodes a [`Measure`] as its index in [`Measure::ALL`].
pub fn measure_to_u8(m: Measure) -> u8 {
    Measure::ALL
        .iter()
        .position(|&x| x == m)
        .expect("every measure is in ALL") as u8
}

/// Decodes a [`Measure`] from its [`Measure::ALL`] index.
pub fn measure_from_u8(v: u8) -> Option<Measure> {
    Measure::ALL.get(v as usize).copied()
}

/// One shard-protocol message (see module docs for framing).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Coordinator → shard: execute attempt `attempt` of query `qid`.
    /// `seed_dk` pre-bounds the shard's collector (`INFINITY` = none —
    /// retries and hedges carry the coordinator's current global bound).
    Query {
        /// Coordinator-assigned query id.
        qid: u64,
        /// Attempt number within the query (retries and hedges increment).
        attempt: u32,
        /// Results requested.
        k: u32,
        /// The deployment measure (sanity-checked by the worker).
        measure: Measure,
        /// Initial threshold bound (`INFINITY` encodes as its bit pattern).
        seed_dk: f64,
        /// The query trajectory.
        points: Vec<Point>,
    },
    /// Shard → coordinator: one accepted local hit, streamed as its
    /// partition completes so the coordinator can tighten everyone else
    /// mid-flight.
    Hit {
        /// The query this hit answers.
        qid: u64,
        /// The attempt that produced it.
        attempt: u32,
        /// The trajectory found.
        id: TrajId,
        /// Its exact distance (bit-exact over the wire).
        dist: f64,
    },
    /// Coordinator → shards: the global k-th-distance bound tightened;
    /// fold `dk` into running searches ([`repose_rptrie::SharedTopK::tighten`]).
    Tighten {
        /// The query whose bound tightened.
        qid: u64,
        /// The new global bound.
        dk: f64,
    },
    /// Shard → coordinator: attempt finished. `hits_sent` is the number
    /// of **distinct** hits streamed for this attempt — the coordinator
    /// completes the shard only once it holds them all, so a reordered
    /// `Done` overtaking its own hits can never truncate an answer.
    Done {
        /// The query this finishes.
        qid: u64,
        /// The attempt this finishes.
        attempt: u32,
        /// Distinct hits streamed by this attempt.
        hits_sent: u32,
        /// Exact kernel verifications the local search paid.
        exact_computations: u64,
        /// Verifications the threshold refuted early.
        exact_abandoned: u64,
    },
    /// Leader → follower: the leader's unacknowledged WAL suffix, oldest
    /// first. Records the follower already holds are skipped idempotently.
    Replicate {
        /// The records, exactly as the leader logged them.
        records: Vec<WalRecord>,
    },
    /// Follower → leader: every record with sequence `<= seq` is durably
    /// applied on the follower.
    Ack {
        /// The follower's highest contiguous operation sequence.
        seq: u64,
    },
    /// Leader → follower: liveness (and the leader's current sequence, so
    /// a follower can observe how far behind it is). A follower that
    /// misses these past its timeout promotes itself.
    Heartbeat {
        /// The leader's current operation sequence.
        seq: u64,
    },
    /// Coordinator → leader: durably upsert, replicate, then acknowledge.
    Upsert {
        /// Coordinator-assigned write id (acks echo it).
        wid: u64,
        /// The trajectory id to upsert.
        id: TrajId,
        /// Its points.
        points: Vec<Point>,
    },
    /// Coordinator → leader: durably delete, replicate, then acknowledge.
    Delete {
        /// Coordinator-assigned write id.
        wid: u64,
        /// The trajectory id to delete.
        id: TrajId,
    },
    /// Leader → coordinator: write `wid` is durable *and* replicated
    /// (log-before-ack: this is the only message that acknowledges a
    /// write, and it is sent strictly after the follower's `Ack`).
    WriteOk {
        /// The acknowledged write.
        wid: u64,
        /// The operation sequence it was logged under.
        seq: u64,
    },
    /// Leader/follower → coordinator: write `wid` was **not** applied
    /// in an acknowledged way; the coordinator may retry elsewhere.
    WriteRefused {
        /// The refused write.
        wid: u64,
        /// Why.
        reason: RefusalReason,
    },
    /// Coordinator → everyone: exit the worker loop (clean teardown).
    Shutdown,
}

const TAG_QUERY: u8 = 1;
const TAG_HIT: u8 = 2;
const TAG_TIGHTEN: u8 = 3;
const TAG_DONE: u8 = 4;
const TAG_REPLICATE: u8 = 5;
const TAG_ACK: u8 = 6;
const TAG_HEARTBEAT: u8 = 7;
const TAG_UPSERT: u8 = 8;
const TAG_DELETE: u8 = 9;
const TAG_WRITE_OK: u8 = 10;
const TAG_WRITE_REFUSED: u8 = 11;
const TAG_SHUTDOWN: u8 = 12;

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The buffer ended mid-frame or mid-field.
    Truncated,
    /// The frame length field exceeds sanity bounds.
    BadLength,
    /// The payload does not match its checksum.
    BadChecksum,
    /// The payload tag names no known message.
    BadTag(u8),
    /// The measure byte names no known measure.
    BadMeasure(u8),
    /// An embedded WAL record failed to decode.
    BadRecord(DecodeError),
    /// A payload field was malformed (e.g. an impossible count).
    BadPayload,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Truncated => write!(f, "frame truncated"),
            ProtocolError::BadLength => write!(f, "frame length exceeds bounds"),
            ProtocolError::BadChecksum => write!(f, "frame checksum mismatch"),
            ProtocolError::BadTag(t) => write!(f, "unknown message tag {t}"),
            ProtocolError::BadMeasure(m) => write!(f, "unknown measure byte {m}"),
            ProtocolError::BadRecord(e) => write!(f, "embedded WAL record: {e:?}"),
            ProtocolError::BadPayload => write!(f, "malformed payload"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Frames larger than this are rejected before allocation (the largest
/// legitimate message is a `Replicate` burst; 64 MiB is far above it).
const MAX_FRAME: u32 = 64 << 20;

impl Message {
    /// Appends this message's payload (tag + fields, no frame header).
    fn encode_payload(&self, buf: &mut Vec<u8>) {
        match self {
            Message::Query { qid, attempt, k, measure, seed_dk, points } => {
                buf.push(TAG_QUERY);
                put_u64(buf, *qid);
                put_u32(buf, *attempt);
                put_u32(buf, *k);
                buf.push(measure_to_u8(*measure));
                put_f64(buf, *seed_dk);
                put_points(buf, points);
            }
            Message::Hit { qid, attempt, id, dist } => {
                buf.push(TAG_HIT);
                put_u64(buf, *qid);
                put_u32(buf, *attempt);
                put_u64(buf, *id);
                put_f64(buf, *dist);
            }
            Message::Tighten { qid, dk } => {
                buf.push(TAG_TIGHTEN);
                put_u64(buf, *qid);
                put_f64(buf, *dk);
            }
            Message::Done { qid, attempt, hits_sent, exact_computations, exact_abandoned } => {
                buf.push(TAG_DONE);
                put_u64(buf, *qid);
                put_u32(buf, *attempt);
                put_u32(buf, *hits_sent);
                put_u64(buf, *exact_computations);
                put_u64(buf, *exact_abandoned);
            }
            Message::Replicate { records } => {
                buf.push(TAG_REPLICATE);
                put_u32(buf, records.len() as u32);
                for r in records {
                    r.encode(buf);
                }
            }
            Message::Ack { seq } => {
                buf.push(TAG_ACK);
                put_u64(buf, *seq);
            }
            Message::Heartbeat { seq } => {
                buf.push(TAG_HEARTBEAT);
                put_u64(buf, *seq);
            }
            Message::Upsert { wid, id, points } => {
                buf.push(TAG_UPSERT);
                put_u64(buf, *wid);
                put_u64(buf, *id);
                put_points(buf, points);
            }
            Message::Delete { wid, id } => {
                buf.push(TAG_DELETE);
                put_u64(buf, *wid);
                put_u64(buf, *id);
            }
            Message::WriteOk { wid, seq } => {
                buf.push(TAG_WRITE_OK);
                put_u64(buf, *wid);
                put_u64(buf, *seq);
            }
            Message::WriteRefused { wid, reason } => {
                buf.push(TAG_WRITE_REFUSED);
                put_u64(buf, *wid);
                buf.push(reason.to_u8());
            }
            Message::Shutdown => buf.push(TAG_SHUTDOWN),
        }
    }

    /// Encodes the full frame: `[len][crc][payload]`.
    pub fn encode_frame(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        self.encode_payload(&mut payload);
        let mut frame = Vec::with_capacity(payload.len() + 8);
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        frame
    }

    /// Decodes one frame from the front of `cur`, advancing it.
    /// `Ok(None)` means a clean end of input (no bytes left).
    pub fn decode_frame(cur: &mut &[u8]) -> Result<Option<Message>, ProtocolError> {
        if cur.is_empty() {
            return Ok(None);
        }
        let len = read_u32(cur).ok_or(ProtocolError::Truncated)?;
        if len == 0 || len > MAX_FRAME {
            return Err(ProtocolError::BadLength);
        }
        let crc = read_u32(cur).ok_or(ProtocolError::Truncated)?;
        if cur.len() < len as usize {
            return Err(ProtocolError::Truncated);
        }
        let (payload, rest) = cur.split_at(len as usize);
        *cur = rest;
        if crc32(payload) != crc {
            return Err(ProtocolError::BadChecksum);
        }
        Ok(Some(Message::decode_payload(payload)?))
    }

    fn decode_payload(mut payload: &[u8]) -> Result<Message, ProtocolError> {
        let cur = &mut payload;
        let (&tag, rest) = cur.split_first().ok_or(ProtocolError::Truncated)?;
        *cur = rest;
        let t = || ProtocolError::Truncated;
        let msg = match tag {
            TAG_QUERY => {
                let qid = read_u64(cur).ok_or_else(t)?;
                let attempt = read_u32(cur).ok_or_else(t)?;
                let k = read_u32(cur).ok_or_else(t)?;
                let (&mb, rest) = cur.split_first().ok_or_else(t)?;
                *cur = rest;
                let measure = measure_from_u8(mb).ok_or(ProtocolError::BadMeasure(mb))?;
                let seed_dk = read_f64(cur).ok_or_else(t)?;
                let points = read_points(cur).ok_or(ProtocolError::BadPayload)?;
                Message::Query { qid, attempt, k, measure, seed_dk, points }
            }
            TAG_HIT => Message::Hit {
                qid: read_u64(cur).ok_or_else(t)?,
                attempt: read_u32(cur).ok_or_else(t)?,
                id: read_u64(cur).ok_or_else(t)?,
                dist: read_f64(cur).ok_or_else(t)?,
            },
            TAG_TIGHTEN => Message::Tighten {
                qid: read_u64(cur).ok_or_else(t)?,
                dk: read_f64(cur).ok_or_else(t)?,
            },
            TAG_DONE => Message::Done {
                qid: read_u64(cur).ok_or_else(t)?,
                attempt: read_u32(cur).ok_or_else(t)?,
                hits_sent: read_u32(cur).ok_or_else(t)?,
                exact_computations: read_u64(cur).ok_or_else(t)?,
                exact_abandoned: read_u64(cur).ok_or_else(t)?,
            },
            TAG_REPLICATE => {
                let n = read_u32(cur).ok_or_else(t)? as usize;
                // Each record frame is at least 8 bytes of header.
                if cur.len() < n.checked_mul(8).ok_or(ProtocolError::BadPayload)? {
                    return Err(ProtocolError::BadPayload);
                }
                let mut records = Vec::with_capacity(n);
                for _ in 0..n {
                    match WalRecord::decode(cur) {
                        Ok(Some(r)) => records.push(r),
                        Ok(None) => return Err(ProtocolError::Truncated),
                        Err(e) => return Err(ProtocolError::BadRecord(e)),
                    }
                }
                Message::Replicate { records }
            }
            TAG_ACK => Message::Ack { seq: read_u64(cur).ok_or_else(t)? },
            TAG_HEARTBEAT => Message::Heartbeat { seq: read_u64(cur).ok_or_else(t)? },
            TAG_UPSERT => Message::Upsert {
                wid: read_u64(cur).ok_or_else(t)?,
                id: read_u64(cur).ok_or_else(t)?,
                points: read_points(cur).ok_or(ProtocolError::BadPayload)?,
            },
            TAG_DELETE => Message::Delete {
                wid: read_u64(cur).ok_or_else(t)?,
                id: read_u64(cur).ok_or_else(t)?,
            },
            TAG_WRITE_OK => Message::WriteOk {
                wid: read_u64(cur).ok_or_else(t)?,
                seq: read_u64(cur).ok_or_else(t)?,
            },
            TAG_WRITE_REFUSED => {
                let wid = read_u64(cur).ok_or_else(t)?;
                let (&rb, rest) = cur.split_first().ok_or_else(t)?;
                *cur = rest;
                let reason = RefusalReason::from_u8(rb).ok_or(ProtocolError::BadPayload)?;
                Message::WriteRefused { wid, reason }
            }
            TAG_SHUTDOWN => Message::Shutdown,
            other => return Err(ProtocolError::BadTag(other)),
        };
        if !cur.is_empty() {
            // Trailing garbage inside a checksummed payload is a protocol
            // bug, not line noise — refuse it.
            return Err(ProtocolError::BadPayload);
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let frame = msg.encode_frame();
        let mut cur = frame.as_slice();
        let back = Message::decode_frame(&mut cur).unwrap().unwrap();
        assert_eq!(back, msg);
        assert!(cur.is_empty());
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(Message::Query {
            qid: 7,
            attempt: 2,
            k: 10,
            measure: Measure::Erp,
            seed_dk: f64::INFINITY,
            points: vec![Point::new(1.5, -2.5), Point::new(0.0, 64.0)],
        });
        roundtrip(Message::Hit { qid: 7, attempt: 2, id: 99, dist: 0.125 });
        roundtrip(Message::Tighten { qid: 7, dk: 3.5 });
        roundtrip(Message::Done {
            qid: 7,
            attempt: 2,
            hits_sent: 5,
            exact_computations: 123,
            exact_abandoned: 45,
        });
        roundtrip(Message::Replicate {
            records: vec![
                WalRecord::Upsert { seq: 1, id: 4, points: vec![Point::new(2.0, 3.0)] },
                WalRecord::Delete { seq: 2, id: 4 },
            ],
        });
        roundtrip(Message::Ack { seq: 9 });
        roundtrip(Message::Heartbeat { seq: 11 });
        roundtrip(Message::Upsert { wid: 1, id: 2, points: vec![Point::new(0.5, 0.5)] });
        roundtrip(Message::Delete { wid: 3, id: 2 });
        roundtrip(Message::WriteOk { wid: 1, seq: 8 });
        for reason in [
            RefusalReason::NotLeader,
            RefusalReason::ReplicationUnavailable,
            RefusalReason::Durability,
        ] {
            roundtrip(Message::WriteRefused { wid: 2, reason });
        }
        roundtrip(Message::Shutdown);
    }

    #[test]
    fn distances_roundtrip_bitwise() {
        for dist in [0.0, f64::MIN_POSITIVE / 2.0, 1.000_000_000_000_000_2] {
            let frame = Message::Hit { qid: 0, attempt: 0, id: 1, dist }.encode_frame();
            let mut cur = frame.as_slice();
            match Message::decode_frame(&mut cur).unwrap().unwrap() {
                Message::Hit { dist: d, .. } => assert_eq!(d.to_bits(), dist.to_bits()),
                other => panic!("wrong message {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_is_typed_not_panic() {
        let frame = Message::Query {
            qid: 1,
            attempt: 0,
            k: 5,
            measure: Measure::Dtw,
            seed_dk: 2.0,
            points: vec![Point::new(1.0, 2.0); 3],
        }
        .encode_frame();
        for cut in 1..frame.len() {
            let mut cur = &frame[..cut];
            assert!(
                Message::decode_frame(&mut cur).is_err(),
                "cut at {cut} must be a typed error"
            );
        }
    }

    #[test]
    fn corruption_fails_checksum() {
        let mut frame = Message::Ack { seq: 1234 }.encode_frame();
        let last = frame.len() - 1;
        frame[last] ^= 0x40;
        let mut cur = frame.as_slice();
        assert_eq!(
            Message::decode_frame(&mut cur),
            Err(ProtocolError::BadChecksum)
        );
    }

    #[test]
    fn unknown_tag_rejected() {
        let payload = [200u8];
        let mut frame = Vec::new();
        put_u32(&mut frame, 1);
        put_u32(&mut frame, crc32(&payload));
        frame.push(200);
        let mut cur = frame.as_slice();
        assert_eq!(Message::decode_frame(&mut cur), Err(ProtocolError::BadTag(200)));
    }

    #[test]
    fn measure_codes_cover_all() {
        for m in Measure::ALL {
            assert_eq!(measure_from_u8(measure_to_u8(m)), Some(m));
        }
        assert_eq!(measure_from_u8(6), None);
    }
}
