//! Deterministic network fault injection for the shard transport — the
//! network-level sibling of the durability layer's
//! [`repose_durability::FailPlan`].
//!
//! A [`NetFaultPlan`] arms *named network sites* with a [`NetFault`] and a
//! hit countdown. Sites are per-node and per-direction:
//! `shard0.tx` (messages shard 0 sends), `replica2.rx` (messages replica 2
//! receives), or the bare node name (`shard0`) for node-scoped faults like
//! partition and crash. The loopback transport consults the plan on every
//! send; when an armed site's countdown reaches zero the fault fires
//! **exactly once**, so a test can say "drop the 3rd message shard 1
//! sends" and get the same interleaving every run.
//!
//! Plans parse from the `REPOSE_NETFAULTS` environment variable with the
//! same grammar as `REPOSE_FAILPOINTS` — `point=action[:after][,...]` —
//! and the same strictness contract: a malformed or misspelled entry is a
//! typed [`NetSpecError`] (and a loud panic at arm time from
//! [`NetFaultPlan::from_env`]), never a silently ignored fault. Both the
//! grammar and the exactly-once countdown registry are the durability
//! layer's [`repose_durability::spec`], not a copy.

use repose_durability::spec::{ArmRegistry, SpecIssue};
use std::sync::Arc;
use std::time::Duration;

/// What an armed network site does to the message that trips it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// The message vanishes. The sender learns nothing.
    Drop,
    /// The message is delivered after this extra delay (other traffic
    /// overtakes it meanwhile).
    Delay(Duration),
    /// The message is delivered twice.
    Duplicate,
    /// The message is held back and delivered *after* the next message on
    /// the same link — a classic reordering.
    Reorder,
    /// The node named by the site is cut off: every message to or from it
    /// is dropped from this moment on (the message that tripped the fault
    /// included).
    Partition,
    /// The node named by the site dies: its worker loop exits and every
    /// message to or from it is dropped.
    Crash,
}

fn parse_action(s: &str) -> Option<NetFault> {
    match s {
        "drop" => Some(NetFault::Drop),
        "dup" => Some(NetFault::Duplicate),
        "reorder" => Some(NetFault::Reorder),
        "partition" => Some(NetFault::Partition),
        "crash" => Some(NetFault::Crash),
        other => other
            .strip_prefix("delay")
            .and_then(|ms| ms.parse::<u64>().ok())
            .map(|ms| NetFault::Delay(Duration::from_millis(ms))),
    }
}

/// A deterministic, shareable network-fault plan (see module docs).
/// Cloning shares the registry.
#[derive(Debug, Clone, Default)]
pub struct NetFaultPlan {
    inner: Arc<ArmRegistry<NetFault>>,
}

impl NetFaultPlan {
    /// An empty plan (a perfectly healthy network).
    pub fn new() -> Self {
        NetFaultPlan::default()
    }

    /// Arms `point` to fire `fault` after `after` further hits (0 = fire
    /// on the very next hit). Re-arming a point replaces its previous arm.
    ///
    /// # Panics
    /// When `point` is not a well-formed site name
    /// ([`valid_point`]) — arming a site the transport never consults
    /// would be the silently-ignored fault this module exists to prevent.
    pub fn arm(&self, point: &str, fault: NetFault, after: u32) {
        assert!(
            valid_point(point),
            "`{point}` is not a network fault site (want coord|shard<N>|replica<N>, \
             optionally suffixed .tx or .rx)"
        );
        self.inner.arm(point, fault, after);
    }

    /// Hit `point`: decrements its countdown and returns the fault the
    /// moment it fires (exactly once per arm).
    pub fn hit(&self, point: &str) -> Option<NetFault> {
        self.inner.hit(point)
    }

    /// Whether any arm has fired.
    pub fn any_fired(&self) -> bool {
        self.inner.any_fired()
    }

    /// A plan parsed from the `REPOSE_NETFAULTS` environment variable;
    /// empty when unset. Malformed entries panic at arm time with a
    /// message naming them.
    pub fn from_env() -> Self {
        match std::env::var("REPOSE_NETFAULTS") {
            Ok(spec) => match Self::parse(&spec) {
                Ok(plan) => plan,
                Err(e) => panic!("REPOSE_NETFAULTS: {e}"),
            },
            Err(_) => NetFaultPlan::new(),
        }
    }

    /// Parses `point=action[:after][,...]`. Actions: `drop`, `dup`,
    /// `reorder`, `partition`, `crash`, `delay<ms>` (e.g. `delay250`).
    /// Points must be well-formed site names (see [`valid_point`]).
    pub fn parse(spec: &str) -> Result<Self, NetSpecError> {
        let plan = NetFaultPlan::new();
        repose_durability::spec::parse_spec(
            spec,
            valid_point,
            parse_action,
            |point, fault, after| plan.arm(point, fault, after),
        )
        .map_err(|e| NetSpecError {
            entry: e.entry,
            reason: match e.issue {
                SpecIssue::MissingEquals => NetSpecReason::MissingEquals,
                SpecIssue::BadPoint(p) => NetSpecReason::BadPoint(p),
                SpecIssue::BadAction(a) => NetSpecReason::BadAction(a),
                SpecIssue::BadCount(n) => NetSpecReason::BadCount(n),
            },
        })?;
        Ok(plan)
    }
}

/// Whether `point` is a well-formed network fault site: `coord`,
/// `shard<N>`, or `replica<N>`, optionally suffixed `.tx` (messages the
/// node sends) or `.rx` (messages it receives).
pub fn valid_point(point: &str) -> bool {
    let base = point
        .strip_suffix(".tx")
        .or_else(|| point.strip_suffix(".rx"))
        .unwrap_or(point);
    if base == "coord" {
        return true;
    }
    let idx = base
        .strip_prefix("shard")
        .or_else(|| base.strip_prefix("replica"));
    matches!(idx, Some(n) if !n.is_empty() && n.bytes().all(|b| b.is_ascii_digit()))
}

/// A malformed network-fault spec entry (see [`NetFaultPlan::parse`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetSpecError {
    /// The offending entry, verbatim.
    pub entry: String,
    /// What was wrong with it.
    pub reason: NetSpecReason,
}

/// Why a network-fault spec entry was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetSpecReason {
    /// No `=` separating point from action.
    MissingEquals,
    /// The point is not a well-formed site name.
    BadPoint(String),
    /// The action is not `drop|dup|reorder|partition|crash|delay<ms>`.
    BadAction(String),
    /// The `:after` countdown is not a non-negative integer.
    BadCount(String),
}

impl std::fmt::Display for NetSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let entry = &self.entry;
        match &self.reason {
            NetSpecReason::MissingEquals => write!(f, "netfault entry `{entry}` lacks `=`"),
            NetSpecReason::BadPoint(p) => write!(
                f,
                "bad netfault site `{p}` in `{entry}` \
                 (want coord|shard<N>|replica<N>[.tx|.rx])"
            ),
            NetSpecReason::BadAction(a) => write!(
                f,
                "unknown netfault action `{a}` in `{entry}` \
                 (want drop|dup|reorder|partition|crash|delay<ms>)"
            ),
            NetSpecReason::BadCount(n) => write!(f, "bad netfault count `{n}` in `{entry}`"),
        }
    }
}

impl std::error::Error for NetSpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn countdown_fires_exactly_once() {
        let plan = NetFaultPlan::new();
        plan.arm("shard0.tx", NetFault::Drop, 2);
        assert_eq!(plan.hit("shard0.tx"), None);
        assert_eq!(plan.hit("shard0.tx"), None);
        assert_eq!(plan.hit("shard0.tx"), Some(NetFault::Drop));
        assert_eq!(plan.hit("shard0.tx"), None);
        assert!(plan.any_fired());
    }

    #[test]
    fn parse_grammar() {
        let plan =
            NetFaultPlan::parse("shard1.rx=delay250:3, coord.tx=dup, replica0=crash").unwrap();
        assert_eq!(plan.hit("coord.tx"), Some(NetFault::Duplicate));
        assert_eq!(
            plan.hit("replica0"),
            Some(NetFault::Crash)
        );
        for _ in 0..3 {
            assert_eq!(plan.hit("shard1.rx"), None);
        }
        assert_eq!(
            plan.hit("shard1.rx"),
            Some(NetFault::Delay(Duration::from_millis(250)))
        );
    }

    #[test]
    fn parse_rejects_bad_site() {
        let err = NetFaultPlan::parse("shardx.tx=drop").unwrap_err();
        assert_eq!(err.reason, NetSpecReason::BadPoint("shardx.tx".into()));
        let err = NetFaultPlan::parse("gateway=drop").unwrap_err();
        assert_eq!(err.reason, NetSpecReason::BadPoint("gateway".into()));
    }

    #[test]
    fn parse_rejects_bad_action_count_and_missing_equals() {
        assert_eq!(
            NetFaultPlan::parse("shard0=explode").unwrap_err().reason,
            NetSpecReason::BadAction("explode".into())
        );
        assert_eq!(
            NetFaultPlan::parse("shard0=delaysoon").unwrap_err().reason,
            NetSpecReason::BadAction("delaysoon".into())
        );
        assert_eq!(
            NetFaultPlan::parse("shard0=drop:always").unwrap_err().reason,
            NetSpecReason::BadCount("always".into())
        );
        assert_eq!(
            NetFaultPlan::parse("shard0").unwrap_err().reason,
            NetSpecReason::MissingEquals
        );
    }

    #[test]
    #[should_panic(expected = "not a network fault site")]
    fn arming_a_bad_site_panics() {
        NetFaultPlan::new().arm("shrd0.tx", NetFault::Drop, 0);
    }

    #[test]
    fn site_grammar() {
        for good in ["coord", "coord.tx", "shard0", "shard12.rx", "replica3.tx"] {
            assert!(valid_point(good), "{good}");
        }
        for bad in ["", "shard", "shard.tx", "replica-1", "coord.txx", "Shard0"] {
            assert!(!valid_point(bad), "{bad}");
        }
    }
}
