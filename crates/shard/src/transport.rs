//! The transport abstraction and its in-process loopback implementation.
//!
//! Every message a node sends is **serialized through the wire protocol**
//! ([`crate::Message::encode_frame`]) at send time and decoded at
//! delivery — the loopback never shortcuts through memory — so the
//! fault-matrix suite exercises the exact byte path a TCP transport
//! would, and a codec bug cannot hide behind in-process object passing.
//!
//! Faults from the attached [`NetFaultPlan`] apply at send time. For each
//! message the transport consults, in order, the sender's `.tx` site, the
//! receiver's `.rx` site, and both bare node sites (for node-scoped
//! faults like partition and crash); the first armed site whose countdown
//! expires decides the message's fate. Partitioned and crashed nodes drop
//! *all* subsequent traffic in both directions.

use crate::fault::{NetFault, NetFaultPlan};
use crate::protocol::Message;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Index of a node on the transport (0 is the coordinator by convention).
pub type NodeId = u16;

/// An encoded frame in flight.
#[derive(Debug, Clone)]
struct Envelope {
    from: NodeId,
    bytes: Vec<u8>,
}

/// Counters of what the network actually did (for experiments and fault
/// assertions). Snapshot via [`Loopback::net_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages submitted to [`Transport::send`].
    pub sent: u64,
    /// Messages actually delivered to an inbox (duplicates count twice).
    pub delivered: u64,
    /// Messages dropped by faults, partitions, or crashed endpoints.
    pub dropped: u64,
    /// Extra deliveries due to duplication faults.
    pub duplicated: u64,
    /// Messages delivered late due to delay faults.
    pub delayed: u64,
    /// Messages held back past a successor due to reorder faults.
    pub reordered: u64,
}

/// What shard workers and coordinators program against. The in-process
/// [`Loopback`] is the only implementation in this repository; a real
/// TCP/QUIC transport would slot in behind the same five methods.
pub trait Transport: Send + Sync {
    /// Sends `msg` from `from` to `to`. Fire-and-forget: delivery is not
    /// guaranteed (that is the point), and failure is silent — reliability
    /// lives in the retry/ack layers above.
    fn send(&self, from: NodeId, to: NodeId, msg: &Message);
    /// Receives the next message addressed to `node`, waiting up to
    /// `timeout`. `None` on timeout (or when the node is crashed).
    fn recv_timeout(&self, node: NodeId, timeout: Duration) -> Option<(NodeId, Message)>;
    /// Receives without blocking.
    fn try_recv(&self, node: NodeId) -> Option<(NodeId, Message)>;
    /// Whether a crash fault has killed `node`.
    fn is_crashed(&self, node: NodeId) -> bool;
    /// Whether the deployment is shutting down (worker loops must exit).
    fn is_shutdown(&self) -> bool;
    /// Begins teardown: every worker loop observes [`Transport::is_shutdown`]
    /// on its next tick, even if partitioned away from the coordinator.
    fn shutdown_all(&self);
}

struct LoopbackInner {
    inboxes: Vec<(Sender<Envelope>, Receiver<Envelope>)>,
    labels: Vec<String>,
    faults: NetFaultPlan,
    severed: Mutex<HashSet<NodeId>>,
    crashed: Mutex<HashSet<NodeId>>,
    /// One held-back message per link, delivered after the link's next
    /// message (reorder fault).
    reorder_pending: Mutex<HashMap<(NodeId, NodeId), Envelope>>,
    shutdown: AtomicBool,
    sent: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
    reordered: AtomicU64,
}

/// The in-process loopback transport (see module docs). Cloning shares
/// the network.
#[derive(Clone)]
pub struct Loopback {
    inner: Arc<LoopbackInner>,
}

impl Loopback {
    /// A network of `labels.len()` nodes; `labels[n]` names node `n` for
    /// fault sites (conventionally `coord`, `shard0`…, `replica0`…).
    pub fn new(labels: Vec<String>, faults: NetFaultPlan) -> Self {
        let inboxes = (0..labels.len()).map(|_| unbounded()).collect();
        Loopback {
            inner: Arc::new(LoopbackInner {
                inboxes,
                labels,
                faults,
                severed: Mutex::new(HashSet::new()),
                crashed: Mutex::new(HashSet::new()),
                reorder_pending: Mutex::new(HashMap::new()),
                shutdown: AtomicBool::new(false),
                sent: AtomicU64::new(0),
                delivered: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                duplicated: AtomicU64::new(0),
                delayed: AtomicU64::new(0),
                reordered: AtomicU64::new(0),
            }),
        }
    }

    /// The fault-site label of `node`.
    pub fn label(&self, node: NodeId) -> &str {
        &self.inner.labels[node as usize]
    }

    /// Snapshot of the network counters.
    pub fn net_stats(&self) -> NetStats {
        let i = &self.inner;
        NetStats {
            sent: i.sent.load(Ordering::Relaxed),
            delivered: i.delivered.load(Ordering::Relaxed),
            dropped: i.dropped.load(Ordering::Relaxed),
            duplicated: i.duplicated.load(Ordering::Relaxed),
            delayed: i.delayed.load(Ordering::Relaxed),
            reordered: i.reordered.load(Ordering::Relaxed),
        }
    }

    /// Whether a partition fault has severed `node` from the network.
    pub fn is_severed(&self, node: NodeId) -> bool {
        self.inner
            .severed
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains(&node)
    }

    fn sever(&self, node: NodeId) {
        self.inner
            .severed
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(node);
    }

    fn mark_crashed(&self, node: NodeId) {
        self.inner
            .crashed
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(node);
    }

    /// The first fault armed on any site this (from, to) exchange touches.
    /// Returns the fault and the node a node-scoped fault applies to.
    fn fault_for(&self, from: NodeId, to: NodeId) -> Option<(NetFault, NodeId)> {
        let faults = &self.inner.faults;
        let from_label = self.label(from);
        let to_label = self.label(to);
        if let Some(f) = faults.hit(&format!("{from_label}.tx")) {
            return Some((f, from));
        }
        if let Some(f) = faults.hit(&format!("{to_label}.rx")) {
            return Some((f, to));
        }
        if let Some(f) = faults.hit(from_label) {
            return Some((f, from));
        }
        if let Some(f) = faults.hit(to_label) {
            return Some((f, to));
        }
        None
    }

    /// Delivers `env` to `to` unless an endpoint is dead or cut off.
    fn deliver(&self, to: NodeId, env: Envelope) {
        if self.is_severed(to) || self.is_severed(env.from) || self.is_crashed(to) {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if self.inner.inboxes[to as usize].0.send(env).is_ok() {
            self.inner.delivered.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Delivers `env`, then flushes any reorder-held message on the link.
    fn deliver_and_flush(&self, from: NodeId, to: NodeId, env: Envelope) {
        self.deliver(to, env);
        let held = self
            .inner
            .reorder_pending
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&(from, to));
        if let Some(h) = held {
            self.deliver(to, h);
        }
    }

    fn pop_envelope(
        &self,
        node: NodeId,
        timeout: Option<Duration>,
    ) -> Option<Envelope> {
        if self.is_crashed(node) {
            return None;
        }
        let rx = &self.inner.inboxes[node as usize].1;
        match timeout {
            // Timeout and disconnect both surface as "nothing arrived".
            Some(t) => rx.recv_timeout(t).ok(),
            None => rx.try_recv(),
        }
    }

    fn decode(env: Envelope) -> Option<(NodeId, Message)> {
        let mut cur = env.bytes.as_slice();
        match Message::decode_frame(&mut cur) {
            // In-process frames are never torn; a decode failure here is a
            // protocol bug and must not be silently eaten in tests.
            Ok(Some(msg)) => {
                debug_assert!(cur.is_empty(), "one frame per envelope");
                Some((env.from, msg))
            }
            Ok(None) | Err(_) => {
                debug_assert!(false, "undecodable frame on loopback");
                None
            }
        }
    }
}

impl Transport for Loopback {
    fn send(&self, from: NodeId, to: NodeId, msg: &Message) {
        self.inner.sent.fetch_add(1, Ordering::Relaxed);
        if self.is_crashed(from) || self.is_severed(from) {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let env = Envelope { from, bytes: msg.encode_frame() };
        match self.fault_for(from, to) {
            None => self.deliver_and_flush(from, to, env),
            Some((NetFault::Drop, _)) => {
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
            Some((NetFault::Duplicate, _)) => {
                self.inner.duplicated.fetch_add(1, Ordering::Relaxed);
                self.deliver(to, env.clone());
                self.deliver_and_flush(from, to, env);
            }
            Some((NetFault::Delay(d), _)) => {
                self.inner.delayed.fetch_add(1, Ordering::Relaxed);
                let net = self.clone();
                std::thread::spawn(move || {
                    std::thread::sleep(d);
                    net.deliver(to, env);
                });
            }
            Some((NetFault::Reorder, _)) => {
                self.inner.reordered.fetch_add(1, Ordering::Relaxed);
                let prev = self
                    .inner
                    .reorder_pending
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert((from, to), env);
                // Two reorder faults on one link: the first held message
                // gives way, not disappears.
                if let Some(p) = prev {
                    self.deliver(to, p);
                }
            }
            Some((NetFault::Partition, node)) => {
                self.sever(node);
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
            Some((NetFault::Crash, node)) => {
                self.mark_crashed(node);
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn recv_timeout(&self, node: NodeId, timeout: Duration) -> Option<(NodeId, Message)> {
        self.pop_envelope(node, Some(timeout)).and_then(Loopback::decode)
    }

    fn try_recv(&self, node: NodeId) -> Option<(NodeId, Message)> {
        self.pop_envelope(node, None).and_then(Loopback::decode)
    }

    fn is_crashed(&self, node: NodeId) -> bool {
        self.inner
            .crashed
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains(&node)
    }

    fn is_shutdown(&self) -> bool {
        self.inner.shutdown.load(Ordering::Acquire)
    }

    fn shutdown_all(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
    }
}

impl std::fmt::Debug for Loopback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Loopback")
            .field("nodes", &self.inner.labels)
            .field("stats", &self.net_stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(faults: NetFaultPlan) -> Loopback {
        Loopback::new(
            vec!["coord".into(), "shard0".into(), "shard1".into()],
            faults,
        )
    }

    const TICK: Duration = Duration::from_millis(100);

    #[test]
    fn healthy_delivery_roundtrips_through_the_codec() {
        let n = net(NetFaultPlan::new());
        n.send(0, 1, &Message::Ack { seq: 7 });
        let (from, msg) = n.recv_timeout(1, TICK).unwrap();
        assert_eq!(from, 0);
        assert_eq!(msg, Message::Ack { seq: 7 });
        assert_eq!(n.net_stats().delivered, 1);
    }

    #[test]
    fn drop_fault_loses_exactly_the_armed_message() {
        let plan = NetFaultPlan::new();
        plan.arm("shard0.rx", NetFault::Drop, 1);
        let n = net(plan);
        n.send(0, 1, &Message::Ack { seq: 1 });
        n.send(0, 1, &Message::Ack { seq: 2 }); // armed: dropped
        n.send(0, 1, &Message::Ack { seq: 3 });
        let got: Vec<_> = (0..2).filter_map(|_| n.recv_timeout(1, TICK)).collect();
        assert_eq!(
            got.iter().map(|(_, m)| m.clone()).collect::<Vec<_>>(),
            vec![Message::Ack { seq: 1 }, Message::Ack { seq: 3 }]
        );
        assert!(n.try_recv(1).is_none());
        assert_eq!(n.net_stats().dropped, 1);
    }

    #[test]
    fn duplicate_fault_delivers_twice() {
        let plan = NetFaultPlan::new();
        plan.arm("coord.tx", NetFault::Duplicate, 0);
        let n = net(plan);
        n.send(0, 1, &Message::Ack { seq: 9 });
        assert_eq!(n.recv_timeout(1, TICK).unwrap().1, Message::Ack { seq: 9 });
        assert_eq!(n.recv_timeout(1, TICK).unwrap().1, Message::Ack { seq: 9 });
    }

    #[test]
    fn reorder_fault_swaps_adjacent_messages() {
        let plan = NetFaultPlan::new();
        plan.arm("shard0.rx", NetFault::Reorder, 0);
        let n = net(plan);
        n.send(0, 1, &Message::Ack { seq: 1 }); // held
        n.send(0, 1, &Message::Ack { seq: 2 }); // delivered, then flushes 1
        assert_eq!(n.recv_timeout(1, TICK).unwrap().1, Message::Ack { seq: 2 });
        assert_eq!(n.recv_timeout(1, TICK).unwrap().1, Message::Ack { seq: 1 });
    }

    #[test]
    fn delay_fault_defers_but_still_delivers() {
        let plan = NetFaultPlan::new();
        plan.arm("shard0.rx", NetFault::Delay(Duration::from_millis(30)), 0);
        let n = net(plan);
        n.send(0, 1, &Message::Ack { seq: 5 });
        assert!(n.try_recv(1).is_none(), "not delivered synchronously");
        assert_eq!(
            n.recv_timeout(1, Duration::from_secs(5)).unwrap().1,
            Message::Ack { seq: 5 }
        );
    }

    #[test]
    fn partition_severs_both_directions_permanently() {
        let plan = NetFaultPlan::new();
        plan.arm("shard0", NetFault::Partition, 0);
        let n = net(plan);
        n.send(0, 1, &Message::Ack { seq: 1 }); // trips the partition
        n.send(0, 1, &Message::Ack { seq: 2 });
        n.send(1, 0, &Message::Ack { seq: 3 });
        n.send(0, 2, &Message::Ack { seq: 4 }); // other shard unaffected
        assert!(n.try_recv(1).is_none());
        assert!(n.try_recv(0).is_none());
        assert_eq!(n.recv_timeout(2, TICK).unwrap().1, Message::Ack { seq: 4 });
        assert!(n.is_severed(1));
    }

    #[test]
    fn crash_kills_the_node() {
        let plan = NetFaultPlan::new();
        plan.arm("shard1", NetFault::Crash, 0);
        let n = net(plan);
        n.send(0, 2, &Message::Ack { seq: 1 }); // trips the crash
        assert!(n.is_crashed(2));
        assert!(n.recv_timeout(2, TICK).is_none(), "a crashed node receives nothing");
        n.send(2, 0, &Message::Ack { seq: 2 });
        assert!(n.try_recv(0).is_none(), "a crashed node sends nothing");
    }

    #[test]
    fn shutdown_reaches_partitioned_nodes() {
        let plan = NetFaultPlan::new();
        plan.arm("shard0", NetFault::Partition, 0);
        let n = net(plan);
        n.send(0, 1, &Message::Ack { seq: 1 });
        assert!(n.is_severed(1));
        n.shutdown_all();
        assert!(n.is_shutdown(), "shutdown is out-of-band, partitions cannot block it");
    }
}
