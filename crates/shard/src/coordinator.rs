//! The scatter-gather coordinator: owns the client-facing query and write
//! paths of a sharded deployment.
//!
//! # Query path (scatter, stream, tighten, gather)
//!
//! A query scatters to every shard at once; each shard streams accepted
//! hits back as it searches ([`Message::Hit`]) and closes with a
//! [`Message::Done`] carrying the count of hits it sent. The coordinator
//! folds every streamed hit into its own [`SharedTopK`] pool and, whenever
//! the pool's k-th distance tightens, broadcasts the new bound to the
//! still-running shards ([`Message::Tighten`]) — a hit found on shard A
//! prunes shard B's remaining partitions mid-flight, which is exactly the
//! in-process shared-threshold design stretched over the wire. Exactness
//! survives the stretch for the same reason it holds in-process: the
//! broadcast bound is the coordinator pool's k-th distance, a sound upper
//! bound on the global k-th at all times, and the only hits a shard can
//! prune under it are ties at the k-th slot whose stand-ins the
//! coordinator pool already holds (see `repose_rptrie::shared`).
//!
//! A shard's answer counts as arrived only when the hits received for one
//! attempt match that attempt's `Done.hits_sent` — a `Done` that overtakes
//! its own hits (reordering) or hits lost to a drop leave the shard
//! incomplete and the retry machinery running, so faults can slow an
//! answer but never silently truncate it.
//!
//! # Deadlines, retries, hedges, degradation
//!
//! Each shard attempt has a deadline; an expired attempt retries with
//! jittered exponential backoff ([`repose_cluster::Backoff`]), alternating
//! between the shard's leader and its replica, re-seeded with the
//! coordinator's current bound so a retry only re-earns what is still
//! missing. Independently, a shard whose attempt has outlived the observed
//! latency percentile ([`repose_cluster::HedgeTracker`]) gets a *hedge*: a
//! duplicate query to the other node of the pair, first answer wins,
//! duplicates deduplicated by trajectory id. A shard that exhausts its
//! retries is declared failed; the answer is returned anyway, marked
//! [`ShardOutcome::degraded`] with an accurate
//! [`ShardOutcome::shards_failed`] — and degraded answers are **never**
//! admitted to the result cache.
//!
//! Every timer — attempt age, hedge trigger, backoff expiry, write
//! deadline, even the reported latency — reads the cluster's injected
//! [`Clock`], sampled **once per gather sweep** so one sweep sees one
//! time. Production builds run on [`SystemClock`]; a simulator passes the
//! same topology a virtual clock (via [`ShardCluster::build_nodes`]) and
//! replays the exact retry/hedge schedule from a seed.
//!
//! # Write path
//!
//! Writes route by `id % shards` to the shard's current leader and wait
//! for the [`Message::WriteOk`] that the leader only sends after its WAL
//! append *and* (when replicated) its follower's acknowledgment
//! (log-before-ack). A refused or timed-out write retries against the
//! other node of the pair; a success from the replica means the follower
//! promoted itself after leader silence, and the coordinator adopts it as
//! the shard's new leader.

use crate::fault::NetFaultPlan;
use crate::protocol::Message;
use crate::transport::{Loopback, NodeId, Transport};
use crate::worker::{Role, ShardWorker, WorkerConfig};
use repose::{Repose, ReposeConfig};
use repose_cluster::{Backoff, BackoffConfig, Clock, HedgeTracker, SystemClock};
use repose_model::{Dataset, Point, Trajectory};
use repose_rptrie::{Hit, SharedTopK};
use repose_service::{ReposeService, ServiceConfig};
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs of a [`ShardCluster`].
#[derive(Debug, Clone, Copy)]
pub struct ShardClusterConfig {
    /// Shard count; trajectories route by `id % shards`.
    pub shards: usize,
    /// Give every shard a follower replica (hedge target, write
    /// replication target, promotion candidate).
    pub replicate: bool,
    /// Per-attempt deadline before a shard query attempt is retried.
    pub attempt_timeout: Duration,
    /// Retries per shard before it is declared failed for the query.
    pub max_retries: u32,
    /// Backoff shape between retry attempts (also seeds write retries).
    pub backoff: BackoffConfig,
    /// Hedge a shard once its attempt outlives this percentile of
    /// observed attempt latencies (0..=1).
    pub hedge_percentile: f64,
    /// Never hedge earlier than this (also the hedge delay until enough
    /// latency samples exist).
    pub hedge_floor: Duration,
    /// Per-attempt deadline for one write acknowledgment.
    pub write_timeout: Duration,
    /// Write retries before the write errors out.
    pub write_retries: u32,
    /// Coordinator result-cache capacity in entries (0 disables).
    pub cache_capacity: usize,
    /// Gather-loop poll granularity.
    pub tick: Duration,
    /// Seed for the coordinator's deterministic backoff jitter.
    pub seed: u64,
    /// Knobs forwarded to every shard worker.
    pub worker: WorkerConfig,
}

impl Default for ShardClusterConfig {
    fn default() -> Self {
        ShardClusterConfig {
            shards: 4,
            replicate: true,
            attempt_timeout: Duration::from_millis(500),
            max_retries: 2,
            backoff: BackoffConfig {
                base: Duration::from_millis(10),
                cap: Duration::from_millis(200),
                factor: 2.0,
                jitter: 0.5,
            },
            hedge_percentile: 0.95,
            hedge_floor: Duration::from_millis(50),
            write_timeout: Duration::from_millis(500),
            write_retries: 6,
            cache_capacity: 256,
            tick: Duration::from_millis(1),
            seed: 0xC00D,
            worker: WorkerConfig::default(),
        }
    }
}

/// The outcome of one coordinated query.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Merged top-k, ascending by distance with ties broken by id. Exact
    /// unless [`ShardOutcome::degraded`].
    pub hits: Vec<Hit>,
    /// At least one shard never completed: the hits are the exact answer
    /// over the shards that did, a best-effort partial answer overall.
    pub degraded: bool,
    /// Shards that exhausted their retries.
    pub shards_failed: u32,
    /// Retry attempts scattered (deadline-driven re-sends).
    pub retries: u32,
    /// Hedge attempts scattered (latency-percentile-driven duplicates).
    pub hedges: u32,
    /// Tighten broadcasts sent (bound-propagation traffic).
    pub tightenings: u32,
    /// Served from the coordinator cache (never true for a degraded
    /// answer — those are not cached).
    pub cache_hit: bool,
    /// Time of the whole scatter-gather on the cluster's clock (virtual
    /// under simulation).
    pub latency: Duration,
}

/// The outcome of one acknowledged write.
#[derive(Debug, Clone, Copy)]
pub struct WriteOutcome {
    /// The owning shard's log sequence for this write.
    pub seq: u64,
    /// Scatter attempts it took (1 = first try).
    pub attempts: u32,
    /// The ack came from a freshly promoted replica; the coordinator
    /// adopted it as the shard's leader.
    pub promoted: bool,
}

/// A write that no node of the owning shard acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteFailed {
    /// The shard that refused or timed out every attempt.
    pub shard: usize,
    /// Attempts made before giving up.
    pub attempts: u32,
}

impl std::fmt::Display for WriteFailed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "write to shard {} failed after {} attempts",
            self.shard, self.attempts
        )
    }
}

impl std::error::Error for WriteFailed {}

/// Per-shard progress of one in-flight query.
struct ShardProgress {
    state: ShardState,
    /// Target of the current primary attempt.
    target: NodeId,
    /// Attempt number of the current primary attempt.
    attempt: u32,
    /// Clock time the current primary attempt was scattered.
    started: Duration,
    hedged: bool,
    retries: u32,
    backoff: Backoff,
    /// attempt -> `Done.hits_sent`, once the Done arrived.
    expected: HashMap<u32, u32>,
    /// attempt -> distinct hit ids received for it.
    received: HashMap<u32, HashSet<u64>>,
}

enum ShardState {
    Running,
    /// Backing off; retry when the clock passes this time.
    RetryAt(Duration),
    Completed,
    Failed,
}

/// A sharded deployment: one coordinator (this object, on the caller's
/// thread), `shards` leader workers, and optionally one replica per shard,
/// all joined by a [`Transport`] — in production an in-process
/// [`Loopback`] that a [`NetFaultPlan`] can make arbitrarily hostile. See
/// module docs.
pub struct ShardCluster {
    cfg: ShardClusterConfig,
    measure: repose_distance::Measure,
    transport: Arc<dyn Transport>,
    /// Set when built over a [`Loopback`] ([`ShardCluster::build`]);
    /// `None` for a simulator-supplied transport.
    loopback: Option<Arc<Loopback>>,
    clock: Arc<dyn Clock>,
    /// Current believed leader of each shard (updated on adopt-promotion).
    leaders: Vec<NodeId>,
    /// Replica node of each shard (empty when unreplicated).
    replicas: Vec<NodeId>,
    /// Leader services, for tests and shadow checks (shared with workers).
    services: Vec<Arc<ReposeService>>,
    /// Replica services (empty when unreplicated).
    replica_services: Vec<Arc<ReposeService>>,
    handles: Vec<JoinHandle<()>>,
    qid: u64,
    wid: u64,
    /// Bumped on every acknowledged write; stamps cache entries.
    version: u64,
    /// Completed attempt latencies feeding the hedge percentile.
    hedge: HedgeTracker,
    cache: HashMap<CacheKey, CacheEntry>,
}

/// Bit-exact cache key: the query's coordinate bit patterns plus k.
type CacheKey = (Vec<(u64, u64)>, usize);
/// A cached answer, stamped with the write version it was computed at.
type CacheEntry = (u64, Vec<Hit>);

impl ShardCluster {
    /// Builds the deployment: shards `dataset` by `id % shards`, builds one
    /// [`Repose`] + [`ReposeService`] per node (replicas start from the
    /// same shard subset), wires everyone over a [`Loopback`] carrying
    /// `faults`, and spawns the worker threads on the monotonic clock.
    ///
    /// `durability_root`, when given, puts every node's WAL under its own
    /// subdirectory (`shard0/`, `replica0/`, ...) so crash tests can
    /// inspect and byte-compare the logs.
    pub fn build(
        dataset: Dataset,
        rcfg: ReposeConfig,
        cfg: ShardClusterConfig,
        faults: NetFaultPlan,
        durability_root: Option<&Path>,
    ) -> Self {
        let mut labels = vec!["coord".to_string()];
        labels.extend((0..cfg.shards).map(|i| format!("shard{i}")));
        if cfg.replicate {
            labels.extend((0..cfg.shards).map(|i| format!("replica{i}")));
        }
        let loopback = Arc::new(Loopback::new(labels, faults));
        let transport = Arc::clone(&loopback) as Arc<dyn Transport>;
        let (mut cluster, workers) = ShardCluster::build_nodes(
            dataset,
            rcfg,
            cfg,
            durability_root,
            transport,
            Arc::new(SystemClock),
        );
        cluster.loopback = Some(loopback);
        for worker in workers {
            cluster.handles.push(std::thread::spawn(move || worker.run()));
        }
        cluster
    }

    /// Builds the same topology over a caller-supplied transport and
    /// clock, returning the workers **unspawned**: the caller decides how
    /// they run. [`ShardCluster::build`] puts each on its own thread; a
    /// deterministic simulator registers them as message pumps and drives
    /// [`ShardWorker::on_message`] / [`ShardWorker::on_tick`] itself on
    /// virtual time.
    pub fn build_nodes(
        dataset: Dataset,
        rcfg: ReposeConfig,
        cfg: ShardClusterConfig,
        durability_root: Option<&Path>,
        transport: Arc<dyn Transport>,
        clock: Arc<dyn Clock>,
    ) -> (Self, Vec<ShardWorker>) {
        assert!(cfg.shards >= 1, "a cluster needs at least one shard");
        assert!(
            (0.0..=1.0).contains(&cfg.hedge_percentile),
            "hedge percentile must be in 0..=1"
        );
        let shards = cfg.shards;
        let mut subsets: Vec<Vec<Trajectory>> = vec![Vec::new(); shards];
        for t in dataset.into_trajectories() {
            subsets[(t.id % shards as u64) as usize].push(t);
        }

        let service_for = |subset: &[Trajectory], label: &str| {
            let repose = Repose::build(&Dataset::from_trajectories(subset.to_vec()), rcfg);
            let scfg = ServiceConfig {
                cache_capacity: 0,
                pool_threads: 1,
                durability: durability_root
                    .map(|root| repose_durability::DurabilityConfig::new(root.join(label))),
                clock: Arc::clone(&clock),
                ..ServiceConfig::default()
            };
            Arc::new(ReposeService::with_config(repose, scfg))
        };

        let mut services = Vec::with_capacity(shards);
        let mut replica_services = Vec::new();
        let mut leaders = Vec::with_capacity(shards);
        let mut replicas = Vec::new();
        let mut workers = Vec::new();
        for (i, subset) in subsets.iter().enumerate() {
            let leader_node = (1 + i) as NodeId;
            let replica_node = (1 + shards + i) as NodeId;
            leaders.push(leader_node);
            let svc = service_for(subset, &format!("shard{i}"));
            services.push(Arc::clone(&svc));
            let role = Role::Leader {
                follower: cfg.replicate.then_some(replica_node),
            };
            workers.push(ShardWorker::with_clock(
                leader_node,
                0,
                role,
                svc,
                Arc::clone(&transport),
                cfg.worker,
                Arc::clone(&clock),
            ));
            if cfg.replicate {
                replicas.push(replica_node);
                let rsvc = service_for(subset, &format!("replica{i}"));
                replica_services.push(Arc::clone(&rsvc));
                workers.push(ShardWorker::with_clock(
                    replica_node,
                    0,
                    Role::Follower { leader: leader_node },
                    rsvc,
                    Arc::clone(&transport),
                    cfg.worker,
                    Arc::clone(&clock),
                ));
            }
        }

        let cluster = ShardCluster {
            measure: rcfg.measure(),
            transport,
            loopback: None,
            clock,
            leaders,
            replicas,
            services,
            replica_services,
            handles: Vec::new(),
            qid: 0,
            wid: 0,
            version: 0,
            hedge: HedgeTracker::new(cfg.seed ^ 0x4ED6),
            cache: HashMap::new(),
            cfg,
        };
        (cluster, workers)
    }

    /// The underlying [`Loopback`] — for fault-test assertions on
    /// [`crate::transport::NetStats`] and node liveness. Panics for a
    /// cluster built over a simulator transport
    /// ([`ShardCluster::build_nodes`]).
    pub fn transport(&self) -> &Loopback {
        self.loopback
            .as_ref()
            .expect("cluster was built over a caller-supplied transport, not a Loopback")
    }

    /// The shard count.
    pub fn shards(&self) -> usize {
        self.cfg.shards
    }

    /// The node the coordinator currently believes leads `shard`.
    pub fn leader_of(&self, shard: usize) -> NodeId {
        self.leaders[shard]
    }

    /// The leader service of `shard` — for shadow checks in tests.
    pub fn leader_service(&self, shard: usize) -> &Arc<ReposeService> {
        &self.services[shard]
    }

    /// The replica service of `shard` (panics when unreplicated).
    pub fn replica_service(&self, shard: usize) -> &Arc<ReposeService> {
        &self.replica_services[shard]
    }

    /// Scatter-gathers the exact top-`k` for `query` (see module docs for
    /// the retry/hedge/degradation contract).
    pub fn query(&mut self, query: &[Point], k: usize) -> ShardOutcome {
        let t0 = self.clock.now();
        let cache_key = (
            query.iter().map(|p| (p.x.to_bits(), p.y.to_bits())).collect::<Vec<_>>(),
            k,
        );
        if let Some((version, hits)) = self.cache.get(&cache_key) {
            if *version == self.version {
                return ShardOutcome {
                    hits: hits.clone(),
                    degraded: false,
                    shards_failed: 0,
                    retries: 0,
                    hedges: 0,
                    tightenings: 0,
                    cache_hit: true,
                    latency: self.clock.now().saturating_sub(t0),
                };
            }
        }

        self.qid += 1;
        let qid = self.qid;
        let version_at_start = self.version;
        let global = SharedTopK::new(k);
        let mut all_hits: Vec<Hit> = Vec::new();
        let mut seen_ids: HashSet<u64> = HashSet::new();
        let mut next_attempt: u32 = 0;
        let (mut retries, mut hedges, mut tightenings) = (0u32, 0u32, 0u32);
        let mut last_broadcast = f64::INFINITY;
        let hedge_after = self.hedge_delay();

        let mut progress: Vec<ShardProgress> = (0..self.cfg.shards)
            .map(|shard| {
                let attempt = next_attempt;
                next_attempt += 1;
                let target = self.leaders[shard];
                self.send_query(target, qid, attempt, k, f64::INFINITY, query);
                ShardProgress {
                    state: ShardState::Running,
                    target,
                    attempt,
                    started: t0,
                    hedged: false,
                    retries: 0,
                    backoff: Backoff::new(self.cfg.backoff, self.cfg.seed ^ qid ^ shard as u64),
                    expected: HashMap::new(),
                    received: HashMap::new(),
                }
            })
            .collect();
        // attempt number -> shard, so replies route without trusting the
        // sender's node id (a hedge and a retry answer for the same shard).
        let mut attempt_shard: HashMap<u32, usize> = (0..self.cfg.shards)
            .map(|shard| (shard as u32, shard))
            .collect();

        loop {
            let open = progress
                .iter()
                .any(|p| matches!(p.state, ShardState::Running | ShardState::RetryAt(_)));
            if !open {
                break;
            }

            // Drain the inbox, then take the sweep's single clock sample:
            // every completion latency and timer decision below sees this
            // one time.
            let mut got = self.transport.recv_timeout(0, self.cfg.tick);
            let now = self.clock.now();
            while let Some((_, msg)) = got {
                match msg {
                    Message::Hit { qid: q, attempt, id, dist } if q == qid => {
                        if let Some(&shard) = attempt_shard.get(&attempt) {
                            let p = &mut progress[shard];
                            p.received.entry(attempt).or_default().insert(id);
                            if seen_ids.insert(id) {
                                global.publish(dist, id);
                                all_hits.push(Hit { id, dist });
                            }
                            Self::check_complete(p, attempt, now, &mut self.hedge);
                        }
                    }
                    Message::Done { qid: q, attempt, hits_sent, .. } if q == qid => {
                        if let Some(&shard) = attempt_shard.get(&attempt) {
                            let p = &mut progress[shard];
                            p.expected.insert(attempt, hits_sent);
                            Self::check_complete(p, attempt, now, &mut self.hedge);
                        }
                    }
                    // Stale query traffic, stray write acks, anything a
                    // fault replayed: not ours, not now.
                    _ => {}
                }
                got = self.transport.try_recv(0);
            }

            // Propagate a tightened global bound to the still-running
            // shards.
            let bound = global.bound();
            if bound < last_broadcast {
                last_broadcast = bound;
                for p in &progress {
                    if let ShardState::Running = p.state {
                        let msg = Message::Tighten { qid, dk: bound };
                        self.transport.send(0, p.target, &msg);
                        tightenings += 1;
                        if p.hedged {
                            let other = self.other_node(p.target);
                            self.transport.send(0, other, &Message::Tighten { qid, dk: bound });
                            tightenings += 1;
                        }
                    }
                }
            }

            // Timers: hedges, attempt deadlines, backed-off retries — all
            // judged against the sweep's one `now` sample.
            for (shard, p) in progress.iter_mut().enumerate() {
                match p.state {
                    ShardState::Running => {
                        let age = now.saturating_sub(p.started);
                        if !p.hedged && !self.replicas.is_empty() && age >= hedge_after {
                            p.hedged = true;
                            hedges += 1;
                            let attempt = next_attempt;
                            next_attempt += 1;
                            attempt_shard.insert(attempt, shard);
                            let other = self.other_node(p.target);
                            self.send_query(other, qid, attempt, k, global.bound(), query);
                        }
                        if age >= self.cfg.attempt_timeout {
                            if p.retries < self.cfg.max_retries {
                                p.retries += 1;
                                p.state = ShardState::RetryAt(now + p.backoff.next_delay());
                            } else {
                                p.state = ShardState::Failed;
                            }
                        }
                    }
                    ShardState::RetryAt(when) => {
                        if now >= when {
                            retries += 1;
                            let attempt = next_attempt;
                            next_attempt += 1;
                            attempt_shard.insert(attempt, shard);
                            // Alternate the pair on every retry; a crashed
                            // or partitioned leader's replica answers.
                            p.target = self.other_node(p.target);
                            p.attempt = attempt;
                            p.started = now;
                            p.hedged = false;
                            p.state = ShardState::Running;
                            self.send_query(p.target, qid, attempt, k, global.bound(), query);
                        }
                    }
                    ShardState::Completed | ShardState::Failed => {}
                }
            }
        }

        let shards_failed = progress
            .iter()
            .filter(|p| matches!(p.state, ShardState::Failed))
            .count() as u32;
        let degraded = shards_failed > 0;
        all_hits.sort_by(Hit::cmp_by_dist_then_id);
        all_hits.truncate(k);
        if !degraded && self.cfg.cache_capacity > 0 && self.version == version_at_start {
            if self.cache.len() >= self.cfg.cache_capacity {
                self.cache.clear();
            }
            self.cache.insert(cache_key, (self.version, all_hits.clone()));
        }
        ShardOutcome {
            hits: all_hits,
            degraded,
            shards_failed,
            retries,
            hedges,
            tightenings,
            cache_hit: false,
            latency: self.clock.now().saturating_sub(t0),
        }
    }

    /// Inserts (or replaces) a trajectory on its owning shard's leader,
    /// acknowledged per the log-before-ack replication contract.
    pub fn insert(&mut self, traj: Trajectory) -> Result<WriteOutcome, WriteFailed> {
        let shard = (traj.id % self.cfg.shards as u64) as usize;
        let (id, points) = (traj.id, traj.points);
        self.write(shard, |wid| Message::Upsert { wid, id, points: points.clone() })
    }

    /// Deletes a trajectory from its owning shard, same contract as
    /// [`ShardCluster::insert`].
    pub fn remove(&mut self, id: u64) -> Result<WriteOutcome, WriteFailed> {
        let shard = (id % self.cfg.shards as u64) as usize;
        self.write(shard, |wid| Message::Delete { wid, id })
    }

    /// Asks every node to stop and joins the worker threads. Also runs on
    /// drop; explicit call gives deterministic shutdown timing in tests.
    pub fn shutdown(&mut self) {
        self.transport.shutdown_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    fn send_query(
        &self,
        target: NodeId,
        qid: u64,
        attempt: u32,
        k: usize,
        seed_dk: f64,
        query: &[Point],
    ) {
        let msg = Message::Query {
            qid,
            attempt,
            k: k as u32,
            measure: self.measure,
            seed_dk,
            points: query.to_vec(),
        };
        self.transport.send(0, target, &msg);
    }

    /// The other node of `node`'s shard pair; `node` itself when
    /// unreplicated (retries re-ask the only node there is).
    fn other_node(&self, node: NodeId) -> NodeId {
        if self.replicas.is_empty() {
            return node;
        }
        let shards = self.cfg.shards as NodeId;
        if node <= shards {
            node + shards
        } else {
            node - shards
        }
    }

    /// Marks the shard completed when `attempt`'s received hits match its
    /// `Done`; records the attempt latency for the hedge percentile.
    fn check_complete(p: &mut ShardProgress, attempt: u32, now: Duration, hedge: &mut HedgeTracker) {
        if matches!(p.state, ShardState::Completed) {
            return;
        }
        let Some(&expected) = p.expected.get(&attempt) else { return };
        let received = p.received.get(&attempt).map_or(0, HashSet::len);
        if received == expected as usize {
            p.state = ShardState::Completed;
            hedge.record(now.saturating_sub(p.started));
        }
    }

    /// The hedge trigger: the configured percentile of observed attempt
    /// latencies, floored by `hedge_floor`; before enough samples exist,
    /// half the attempt timeout (still floored).
    fn hedge_delay(&mut self) -> Duration {
        self.hedge.delay(
            self.cfg.hedge_percentile,
            self.cfg.hedge_floor,
            self.cfg.attempt_timeout / 2,
        )
    }

    fn write(
        &mut self,
        shard: usize,
        make: impl Fn(u64) -> Message,
    ) -> Result<WriteOutcome, WriteFailed> {
        let mut target = self.leaders[shard];
        let mut backoff = Backoff::new(self.cfg.backoff, self.cfg.seed ^ 0xB11D ^ self.wid);
        let mut attempts = 0u32;
        while attempts <= self.cfg.write_retries {
            attempts += 1;
            self.wid += 1;
            let wid = self.wid;
            self.transport.send(0, target, &make(wid));
            let deadline = self.clock.now() + self.cfg.write_timeout;
            'wait: loop {
                // One clock sample decides both expiry and the wait span.
                let now = self.clock.now();
                if now >= deadline {
                    break 'wait;
                }
                match self.transport.recv_timeout(0, deadline - now) {
                    Some((_, Message::WriteOk { wid: w, seq })) if w == wid => {
                        let promoted = target != self.leaders[shard];
                        if promoted {
                            self.leaders[shard] = target;
                        }
                        self.version += 1;
                        return Ok(WriteOutcome { seq, attempts, promoted });
                    }
                    Some((_, Message::WriteRefused { wid: w, .. })) if w == wid => break 'wait,
                    // Stale query traffic or an old attempt's answer.
                    _ => {}
                }
            }
            if attempts <= self.cfg.write_retries {
                target = self.other_node(target);
                self.clock.sleep(backoff.next_delay());
            }
        }
        Err(WriteFailed { shard, attempts })
    }
}

impl Drop for ShardCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ShardCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardCluster")
            .field("shards", &self.cfg.shards)
            .field("replicate", &self.cfg.replicate)
            .field("leaders", &self.leaders)
            .finish()
    }
}
