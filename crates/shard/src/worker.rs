//! The shard worker: one node owning one shard of the dataset (a full
//! [`ReposeService`] over its subset), driven by a single-threaded
//! message loop.
//!
//! # Query path
//!
//! A [`Message::Query`] executes via
//! [`ReposeService::query_scatter`]: partitions run sequentially in bound
//! order, each completed partition's accepted hits stream to the
//! coordinator immediately, and between partitions the worker drains its
//! inbox for [`Message::Tighten`] broadcasts, folding the coordinator's
//! global bound into the running collector so a hit found on *another
//! shard* prunes this one mid-flight — the wire-level generalization of
//! the in-process `SharedTopK` design. The closing [`Message::Done`]
//! carries the count of hits streamed, which lets the coordinator detect
//! in-flight losses and reordering.
//!
//! # Replication and promotion
//!
//! A leader logs every write to its own WAL first
//! ([`ReposeService::insert_acked`]), then sends its unacknowledged log
//! suffix to its follower and waits for the follower's [`Message::Ack`]
//! **before** acknowledging the client (log-before-ack; an unconfirmed
//! replication refuses the write instead). The suffix-resend discipline
//! plus the follower's idempotent, gap-refusing
//! [`ReposeService::apply_replica`] make replication immune to dropped,
//! duplicated, and reordered `Replicate` frames. Followers serve reads
//! always, and promote to (followerless) leader when heartbeats go
//! silent past the timeout — after which they accept writes too.
//!
//! A write refused for `ReplicationUnavailable` was *not* acknowledged
//! but may still be applied (the leader logged it before replicating) —
//! at-least-once semantics with idempotent upserts; the loss contract is
//! one-directional: **acknowledged ⇒ survives**.

use crate::protocol::{Message, RefusalReason};
use crate::transport::{NodeId, Transport};
use repose_cluster::{Backoff, BackoffConfig};
use repose_durability::WalRecord;
use repose_model::Trajectory;
use repose_service::ReposeService;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What a node is to its shard's replication pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepts writes; replicates to `follower` before acknowledging
    /// (`None` = unreplicated deployment, acks after the local log).
    Leader {
        /// The replication target, if any.
        follower: Option<NodeId>,
    },
    /// Serves reads, applies replicated records, and promotes itself when
    /// `leader`'s heartbeats go silent.
    Follower {
        /// The node whose heartbeats this follower watches.
        leader: NodeId,
    },
}

/// Timing and retry knobs of a [`ShardWorker`].
#[derive(Debug, Clone, Copy)]
pub struct WorkerConfig {
    /// How often a leader heartbeats its follower.
    pub heartbeat_every: Duration,
    /// Silence past this promotes a follower.
    pub heartbeat_timeout: Duration,
    /// How long a leader waits for one replication `Ack`.
    pub ack_timeout: Duration,
    /// Replication resends before refusing the write.
    pub replication_retries: u32,
    /// Backoff shape between replication resends.
    pub backoff: BackoffConfig,
    /// Idle poll granularity of the message loop.
    pub tick: Duration,
    /// Seed for this node's deterministic jitter.
    pub seed: u64,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            heartbeat_every: Duration::from_millis(20),
            heartbeat_timeout: Duration::from_millis(150),
            ack_timeout: Duration::from_millis(200),
            replication_retries: 3,
            backoff: BackoffConfig {
                base: Duration::from_millis(5),
                cap: Duration::from_millis(100),
                factor: 2.0,
                jitter: 0.5,
            },
            tick: Duration::from_millis(2),
            seed: 0x5AAD,
        }
    }
}

/// One shard node's state and message loop (see module docs).
pub struct ShardWorker {
    node: NodeId,
    coord: NodeId,
    role: Role,
    service: Arc<ReposeService>,
    transport: Arc<dyn Transport>,
    cfg: WorkerConfig,
}

impl ShardWorker {
    /// Assembles a worker; call [`ShardWorker::run`] on its own thread.
    pub fn new(
        node: NodeId,
        coord: NodeId,
        role: Role,
        service: Arc<ReposeService>,
        transport: Arc<dyn Transport>,
        cfg: WorkerConfig,
    ) -> Self {
        ShardWorker { node, coord, role, service, transport, cfg }
    }

    /// The message loop: runs until shutdown, a crash fault, or a
    /// [`Message::Shutdown`].
    pub fn run(mut self) {
        let mut pending: VecDeque<(NodeId, Message)> = VecDeque::new();
        let mut unreplicated: Vec<WalRecord> = Vec::new();
        // First heartbeat goes out immediately.
        let mut last_hb_sent = Instant::now() - self.cfg.heartbeat_every;
        let mut last_hb_seen = Instant::now();
        loop {
            if self.transport.is_shutdown() || self.transport.is_crashed(self.node) {
                return;
            }
            self.maybe_heartbeat(&mut last_hb_sent);
            if let Role::Follower { .. } = self.role {
                if last_hb_seen.elapsed() > self.cfg.heartbeat_timeout {
                    // The leader went silent: take over. No follower of
                    // our own — replication pairs are not chains.
                    self.role = Role::Leader { follower: None };
                }
            }
            let next = pending
                .pop_front()
                .or_else(|| self.transport.recv_timeout(self.node, self.cfg.tick));
            let Some((from, msg)) = next else { continue };
            match msg {
                Message::Shutdown => return,
                Message::Heartbeat { .. } => last_hb_seen = Instant::now(),
                Message::Query { qid, attempt, k, measure, seed_dk, points } => {
                    debug_assert_eq!(
                        measure,
                        self.service.config().measure(),
                        "coordinator and shard disagree on the deployment measure"
                    );
                    self.handle_query(
                        qid,
                        attempt,
                        k as usize,
                        seed_dk,
                        &points,
                        &mut pending,
                        &mut last_hb_sent,
                        &mut last_hb_seen,
                    );
                }
                // A tighten with no query running raced a finished (or
                // retried) attempt; the bound is stale by construction.
                Message::Tighten { .. } => {}
                Message::Replicate { records } => {
                    last_hb_seen = Instant::now();
                    self.handle_replicate(from, &records);
                }
                Message::Upsert { wid, id, points } => {
                    self.handle_upsert(wid, id, points, &mut pending, &mut unreplicated);
                }
                Message::Delete { wid, id } => {
                    self.handle_delete(wid, id, &mut pending, &mut unreplicated);
                }
                // A late ack from a timed-out replication round still
                // confirms the follower's progress.
                Message::Ack { seq } => unreplicated.retain(|r| r.seq() > seq),
                // Addressed to coordinators; nothing for a worker.
                Message::Hit { .. }
                | Message::Done { .. }
                | Message::WriteOk { .. }
                | Message::WriteRefused { .. } => {}
            }
        }
    }

    /// Sends a liveness heartbeat when one is due (leaders with followers
    /// only). Also called between partitions of a running query so a long
    /// search cannot starve the follower into a spurious promotion.
    fn maybe_heartbeat(&self, last_hb_sent: &mut Instant) {
        if let Role::Leader { follower: Some(f) } = self.role {
            if last_hb_sent.elapsed() >= self.cfg.heartbeat_every {
                let hb = Message::Heartbeat { seq: self.service.op_seq() };
                self.transport.send(self.node, f, &hb);
                *last_hb_sent = Instant::now();
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_query(
        &self,
        qid: u64,
        attempt: u32,
        k: usize,
        seed_dk: f64,
        points: &[repose_model::Point],
        pending: &mut VecDeque<(NodeId, Message)>,
        last_hb_sent: &mut Instant,
        last_hb_seen: &mut Instant,
    ) {
        let (node, coord) = (self.node, self.coord);
        let transport = &self.transport;
        let mut hits_sent = 0u32;
        let outcome = self.service.query_scatter(points, k, seed_dk, |collector, part_hits| {
            for h in part_hits {
                let hit = Message::Hit { qid, attempt, id: h.id, dist: h.dist };
                transport.send(node, coord, &hit);
            }
            hits_sent += part_hits.len() as u32;
            // Between partitions: fold in remote tightenings so the next
            // partition prunes under the freshest global bound; stash
            // anything else for the main loop.
            while let Some((from, m)) = transport.try_recv(node) {
                match m {
                    Message::Tighten { qid: q, dk } if q == qid => collector.tighten(dk),
                    Message::Tighten { .. } => {}
                    // Liveness bookkeeping cannot wait for the search to
                    // finish: a long query on a follower must not read as
                    // leader silence and trigger a spurious promotion.
                    Message::Heartbeat { .. } => *last_hb_seen = Instant::now(),
                    other => {
                        if matches!(other, Message::Replicate { .. }) {
                            *last_hb_seen = Instant::now();
                        }
                        pending.push_back((from, other));
                    }
                }
            }
            self.maybe_heartbeat(last_hb_sent);
        });
        if let Ok(o) = outcome {
            let done = Message::Done {
                qid,
                attempt,
                hits_sent,
                exact_computations: o.search.exact_computations as u64,
                exact_abandoned: o.search.exact_abandoned as u64,
            };
            transport.send(node, coord, &done);
        }
        // A poisoned service sends nothing; the coordinator's deadline
        // treats the silence like any other lost shard.
    }

    fn handle_replicate(&self, from: NodeId, records: &[WalRecord]) {
        for r in records {
            // Duplicates are skipped inside; a gap (or a dead WAL) stops
            // the batch — the ack below tells the leader how far we got,
            // and the suffix-resend covers the rest.
            if self.service.apply_replica(r).is_err() {
                break;
            }
        }
        let ack = Message::Ack { seq: self.service.op_seq() };
        self.transport.send(self.node, from, &ack);
    }

    fn handle_upsert(
        &self,
        wid: u64,
        id: u64,
        points: Vec<repose_model::Point>,
        pending: &mut VecDeque<(NodeId, Message)>,
        unreplicated: &mut Vec<WalRecord>,
    ) {
        if !matches!(self.role, Role::Leader { .. }) {
            self.refuse(wid, RefusalReason::NotLeader);
            return;
        }
        match self.service.insert_acked(Trajectory::new(id, points.clone())) {
            Err(_) => self.refuse(wid, RefusalReason::Durability),
            Ok(seq) => self.finish_write(
                wid,
                seq,
                WalRecord::Upsert { seq, id, points },
                pending,
                unreplicated,
            ),
        }
    }

    fn handle_delete(
        &self,
        wid: u64,
        id: u64,
        pending: &mut VecDeque<(NodeId, Message)>,
        unreplicated: &mut Vec<WalRecord>,
    ) {
        if !matches!(self.role, Role::Leader { .. }) {
            self.refuse(wid, RefusalReason::NotLeader);
            return;
        }
        match self.service.remove_acked(id) {
            Err(_) => self.refuse(wid, RefusalReason::Durability),
            Ok(seq) => {
                self.finish_write(wid, seq, WalRecord::Delete { seq, id }, pending, unreplicated)
            }
        }
    }

    fn refuse(&self, wid: u64, reason: RefusalReason) {
        let msg = Message::WriteRefused { wid, reason };
        self.transport.send(self.node, self.coord, &msg);
    }

    /// Local log succeeded; replicate (if paired), then acknowledge.
    fn finish_write(
        &self,
        wid: u64,
        seq: u64,
        record: WalRecord,
        pending: &mut VecDeque<(NodeId, Message)>,
        unreplicated: &mut Vec<WalRecord>,
    ) {
        let Role::Leader { follower } = self.role else { unreachable!("checked by callers") };
        match follower {
            None => {
                let ok = Message::WriteOk { wid, seq };
                self.transport.send(self.node, self.coord, &ok);
            }
            Some(f) => {
                unreplicated.push(record);
                if self.replicate_until_acked(f, seq, pending, unreplicated) {
                    let ok = Message::WriteOk { wid, seq };
                    self.transport.send(self.node, self.coord, &ok);
                } else {
                    self.refuse(wid, RefusalReason::ReplicationUnavailable);
                }
            }
        }
    }

    /// Sends the unacknowledged log suffix until the follower confirms
    /// everything up to `target_seq`, with jittered-backoff resends.
    /// Returns false when the retry budget runs out (write not acked; the
    /// suffix stays queued and rides along with the next write).
    fn replicate_until_acked(
        &self,
        follower: NodeId,
        target_seq: u64,
        pending: &mut VecDeque<(NodeId, Message)>,
        unreplicated: &mut Vec<WalRecord>,
    ) -> bool {
        let mut backoff =
            Backoff::new(self.cfg.backoff, self.cfg.seed ^ (self.node as u64) ^ target_seq);
        for attempt in 0..=self.cfg.replication_retries {
            if self.transport.is_shutdown() || self.transport.is_crashed(self.node) {
                return false;
            }
            let batch = Message::Replicate { records: unreplicated.clone() };
            self.transport.send(self.node, follower, &batch);
            let deadline = Instant::now() + self.cfg.ack_timeout;
            loop {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                match self.transport.recv_timeout(self.node, remaining) {
                    None => {}
                    Some((_, Message::Ack { seq })) => {
                        unreplicated.retain(|r| r.seq() > seq);
                        if seq >= target_seq {
                            return true;
                        }
                    }
                    Some(other) => pending.push_back(other),
                }
            }
            if attempt < self.cfg.replication_retries {
                std::thread::sleep(backoff.next_delay());
            }
        }
        false
    }
}

impl std::fmt::Debug for ShardWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardWorker")
            .field("node", &self.node)
            .field("role", &self.role)
            .finish()
    }
}
