//! The shard worker: one node owning one shard of the dataset (a full
//! [`ReposeService`] over its subset), driven by a single-threaded
//! message loop.
//!
//! # Query path
//!
//! A [`Message::Query`] executes via
//! [`ReposeService::query_scatter`]: partitions run sequentially in bound
//! order, each completed partition's accepted hits stream to the
//! coordinator immediately, and between partitions the worker drains its
//! inbox for [`Message::Tighten`] broadcasts, folding the coordinator's
//! global bound into the running collector so a hit found on *another
//! shard* prunes this one mid-flight — the wire-level generalization of
//! the in-process `SharedTopK` design. The closing [`Message::Done`]
//! carries the count of hits streamed, which lets the coordinator detect
//! in-flight losses and reordering.
//!
//! # Replication and promotion
//!
//! A leader logs every write to its own WAL first
//! ([`ReposeService::insert_acked`]), then sends its unacknowledged log
//! suffix to its follower and waits for the follower's [`Message::Ack`]
//! **before** acknowledging the client (log-before-ack; an unconfirmed
//! replication refuses the write instead). The suffix-resend discipline
//! plus the follower's idempotent, gap-refusing
//! [`ReposeService::apply_replica`] make replication immune to dropped,
//! duplicated, and reordered `Replicate` frames. Followers serve reads
//! always, and promote to (followerless) leader when heartbeats go
//! silent past the timeout — after which they accept writes too.
//!
//! A write refused for `ReplicationUnavailable` was *not* acknowledged
//! but may still be applied (the leader logged it before replicating) —
//! at-least-once semantics with idempotent upserts; the loss contract is
//! one-directional: **acknowledged ⇒ survives**.
//!
//! # Event-driven core
//!
//! All of the worker's behaviour lives in [`ShardWorker::on_message`] and
//! [`ShardWorker::on_tick`]; [`ShardWorker::run`] is a thin loop that
//! feeds them from the transport. Every timer reads the injected
//! [`Clock`], so a deterministic simulator can drive the *same* worker
//! code on virtual time by calling the handlers directly — no threads,
//! no wall clock, and the exact tick a heartbeat or promotion fires on
//! replays from a seed.

use crate::protocol::{Message, RefusalReason};
use crate::transport::{NodeId, Transport};
use repose_cluster::{Backoff, BackoffConfig, Clock, SystemClock};
use repose_durability::WalRecord;
use repose_model::Trajectory;
use repose_service::ReposeService;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// What a node is to its shard's replication pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepts writes; replicates to `follower` before acknowledging
    /// (`None` = unreplicated deployment, acks after the local log).
    Leader {
        /// The replication target, if any.
        follower: Option<NodeId>,
    },
    /// Serves reads, applies replicated records, and promotes itself when
    /// `leader`'s heartbeats go silent.
    Follower {
        /// The node whose heartbeats this follower watches.
        leader: NodeId,
    },
}

/// Timing and retry knobs of a [`ShardWorker`].
#[derive(Debug, Clone, Copy)]
pub struct WorkerConfig {
    /// How often a leader heartbeats its follower.
    pub heartbeat_every: Duration,
    /// Silence past this promotes a follower.
    pub heartbeat_timeout: Duration,
    /// How long a leader waits for one replication `Ack`.
    pub ack_timeout: Duration,
    /// Replication resends before refusing the write.
    pub replication_retries: u32,
    /// Backoff shape between replication resends.
    pub backoff: BackoffConfig,
    /// Idle poll granularity of the message loop.
    pub tick: Duration,
    /// Seed for this node's deterministic jitter.
    pub seed: u64,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            heartbeat_every: Duration::from_millis(20),
            heartbeat_timeout: Duration::from_millis(150),
            ack_timeout: Duration::from_millis(200),
            replication_retries: 3,
            backoff: BackoffConfig {
                base: Duration::from_millis(5),
                cap: Duration::from_millis(100),
                factor: 2.0,
                jitter: 0.5,
            },
            tick: Duration::from_millis(2),
            seed: 0x5AAD,
        }
    }
}

/// One shard node's state and message loop (see module docs).
pub struct ShardWorker {
    node: NodeId,
    coord: NodeId,
    role: Role,
    service: Arc<ReposeService>,
    transport: Arc<dyn Transport>,
    clock: Arc<dyn Clock>,
    cfg: WorkerConfig,
    /// Frames that arrived inside a nested handler (mid-query, or while
    /// waiting for a replication ack), replayed before the next receive.
    pending: VecDeque<(NodeId, Message)>,
    /// The unacknowledged log suffix a leader resends to its follower.
    unreplicated: Vec<WalRecord>,
    /// When the last heartbeat went out (`None` = one is due now).
    last_hb_sent: Option<Duration>,
    /// When the watched leader was last heard from.
    last_hb_seen: Duration,
}

impl ShardWorker {
    /// Assembles a worker on the monotonic clock; call
    /// [`ShardWorker::run`] on its own thread.
    pub fn new(
        node: NodeId,
        coord: NodeId,
        role: Role,
        service: Arc<ReposeService>,
        transport: Arc<dyn Transport>,
        cfg: WorkerConfig,
    ) -> Self {
        ShardWorker::with_clock(node, coord, role, service, transport, cfg, Arc::new(SystemClock))
    }

    /// Assembles a worker reading time from `clock` — the injectable form
    /// a simulator uses to drive the handlers on virtual time.
    #[allow(clippy::too_many_arguments)]
    pub fn with_clock(
        node: NodeId,
        coord: NodeId,
        role: Role,
        service: Arc<ReposeService>,
        transport: Arc<dyn Transport>,
        cfg: WorkerConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        let last_hb_seen = clock.now();
        ShardWorker {
            node,
            coord,
            role,
            service,
            transport,
            clock,
            cfg,
            pending: VecDeque::new(),
            unreplicated: Vec::new(),
            last_hb_sent: None,
            last_hb_seen,
        }
    }

    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The node's current replication role (changes on promotion).
    pub fn role(&self) -> Role {
        self.role
    }

    /// The shard's local service (the simulator's oracle reads through
    /// this).
    pub fn service(&self) -> &Arc<ReposeService> {
        &self.service
    }

    /// The message loop: runs until shutdown, a crash fault, or a
    /// [`Message::Shutdown`].
    pub fn run(mut self) {
        loop {
            if self.transport.is_shutdown() || self.transport.is_crashed(self.node) {
                return;
            }
            self.on_tick();
            let next = self
                .pending
                .pop_front()
                .or_else(|| self.transport.recv_timeout(self.node, self.cfg.tick));
            let Some((from, msg)) = next else { continue };
            if !self.on_message(from, msg) {
                return;
            }
        }
    }

    /// Timer edge: heartbeats a follower when one is due, and promotes a
    /// follower whose leader has gone silent past the timeout. Drivers
    /// call this once per tick of their loop (real or virtual).
    pub fn on_tick(&mut self) {
        Self::heartbeat_if_due(
            self.role,
            self.node,
            self.cfg.heartbeat_every,
            &*self.transport,
            &self.service,
            &*self.clock,
            &mut self.last_hb_sent,
        );
        if let Role::Follower { .. } = self.role {
            let now = self.clock.now();
            if now.saturating_sub(self.last_hb_seen) > self.cfg.heartbeat_timeout {
                // The leader went silent: take over. No follower of our
                // own — replication pairs are not chains.
                self.role = Role::Leader { follower: None };
            }
        }
    }

    /// Handles one frame. Returns `false` when the worker should stop
    /// (a [`Message::Shutdown`]).
    pub fn on_message(&mut self, from: NodeId, msg: Message) -> bool {
        match msg {
            Message::Shutdown => return false,
            Message::Heartbeat { .. } => self.last_hb_seen = self.clock.now(),
            Message::Query { qid, attempt, k, measure, seed_dk, points } => {
                debug_assert_eq!(
                    measure,
                    self.service.config().measure(),
                    "coordinator and shard disagree on the deployment measure"
                );
                self.handle_query(qid, attempt, k as usize, seed_dk, &points);
            }
            // A tighten with no query running raced a finished (or
            // retried) attempt; the bound is stale by construction.
            Message::Tighten { .. } => {}
            Message::Replicate { records } => {
                self.last_hb_seen = self.clock.now();
                self.handle_replicate(from, &records);
            }
            Message::Upsert { wid, id, points } => self.handle_upsert(wid, id, points),
            Message::Delete { wid, id } => self.handle_delete(wid, id),
            // A late ack from a timed-out replication round still
            // confirms the follower's progress.
            Message::Ack { seq } => self.unreplicated.retain(|r| r.seq() > seq),
            // Addressed to coordinators; nothing for a worker.
            Message::Hit { .. }
            | Message::Done { .. }
            | Message::WriteOk { .. }
            | Message::WriteRefused { .. } => {}
        }
        true
    }

    /// Replays frames stashed by a nested handler through
    /// [`ShardWorker::on_message`]. Returns `false` on shutdown. Drivers
    /// that bypass [`ShardWorker::run`] call this after each delivery so
    /// stashed frames don't sit until the next one.
    pub fn drain_pending(&mut self) -> bool {
        while let Some((from, msg)) = self.pending.pop_front() {
            if !self.on_message(from, msg) {
                return false;
            }
        }
        true
    }

    /// Sends a liveness heartbeat when one is due (leaders with followers
    /// only). Free-standing over explicit fields so the mid-query closure
    /// in [`ShardWorker::handle_query`] can call it while holding
    /// disjoint borrows of the worker.
    fn heartbeat_if_due(
        role: Role,
        node: NodeId,
        every: Duration,
        transport: &dyn Transport,
        service: &ReposeService,
        clock: &dyn Clock,
        last_hb_sent: &mut Option<Duration>,
    ) {
        if let Role::Leader { follower: Some(f) } = role {
            let now = clock.now();
            if last_hb_sent.is_none_or(|t| now.saturating_sub(t) >= every) {
                let hb = Message::Heartbeat { seq: service.op_seq() };
                transport.send(node, f, &hb);
                *last_hb_sent = Some(now);
            }
        }
    }

    fn handle_query(
        &mut self,
        qid: u64,
        attempt: u32,
        k: usize,
        seed_dk: f64,
        points: &[repose_model::Point],
    ) {
        // Destructure so the scatter closure can hold &mut to the stash
        // and heartbeat state while the service and transport stay
        // shared.
        let ShardWorker {
            node,
            coord,
            role,
            service,
            transport,
            clock,
            cfg,
            pending,
            last_hb_sent,
            last_hb_seen,
            ..
        } = self;
        let (node, coord, role) = (*node, *coord, *role);
        let transport = &**transport;
        let clock = &**clock;
        let service = Arc::clone(service);
        let mut hits_sent = 0u32;
        let outcome = service.query_scatter(points, k, seed_dk, |collector, part_hits| {
            for h in part_hits {
                let hit = Message::Hit { qid, attempt, id: h.id, dist: h.dist };
                transport.send(node, coord, &hit);
            }
            hits_sent += part_hits.len() as u32;
            // Between partitions: fold in remote tightenings so the next
            // partition prunes under the freshest global bound; stash
            // anything else for the main loop.
            while let Some((from, m)) = transport.try_recv(node) {
                match m {
                    Message::Tighten { qid: q, dk } if q == qid => collector.tighten(dk),
                    Message::Tighten { .. } => {}
                    // Liveness bookkeeping cannot wait for the search to
                    // finish: a long query on a follower must not read as
                    // leader silence and trigger a spurious promotion.
                    Message::Heartbeat { .. } => *last_hb_seen = clock.now(),
                    other => {
                        if matches!(other, Message::Replicate { .. }) {
                            *last_hb_seen = clock.now();
                        }
                        pending.push_back((from, other));
                    }
                }
            }
            Self::heartbeat_if_due(
                role,
                node,
                cfg.heartbeat_every,
                transport,
                &service,
                clock,
                last_hb_sent,
            );
        });
        if let Ok(o) = outcome {
            let done = Message::Done {
                qid,
                attempt,
                hits_sent,
                exact_computations: o.search.exact_computations as u64,
                exact_abandoned: o.search.exact_abandoned as u64,
            };
            transport.send(node, coord, &done);
        }
        // A poisoned service sends nothing; the coordinator's deadline
        // treats the silence like any other lost shard.
    }

    fn handle_replicate(&self, from: NodeId, records: &[WalRecord]) {
        for r in records {
            // Duplicates are skipped inside; a gap (or a dead WAL) stops
            // the batch — the ack below tells the leader how far we got,
            // and the suffix-resend covers the rest.
            if self.service.apply_replica(r).is_err() {
                break;
            }
        }
        let ack = Message::Ack { seq: self.service.op_seq() };
        self.transport.send(self.node, from, &ack);
    }

    fn handle_upsert(&mut self, wid: u64, id: u64, points: Vec<repose_model::Point>) {
        if !matches!(self.role, Role::Leader { .. }) {
            self.refuse(wid, RefusalReason::NotLeader);
            return;
        }
        match self.service.insert_acked(Trajectory::new(id, points.clone())) {
            Err(_) => self.refuse(wid, RefusalReason::Durability),
            Ok(seq) => self.finish_write(wid, seq, WalRecord::Upsert { seq, id, points }),
        }
    }

    fn handle_delete(&mut self, wid: u64, id: u64) {
        if !matches!(self.role, Role::Leader { .. }) {
            self.refuse(wid, RefusalReason::NotLeader);
            return;
        }
        match self.service.remove_acked(id) {
            Err(_) => self.refuse(wid, RefusalReason::Durability),
            Ok(seq) => self.finish_write(wid, seq, WalRecord::Delete { seq, id }),
        }
    }

    fn refuse(&self, wid: u64, reason: RefusalReason) {
        let msg = Message::WriteRefused { wid, reason };
        self.transport.send(self.node, self.coord, &msg);
    }

    /// Local log succeeded; replicate (if paired), then acknowledge.
    fn finish_write(&mut self, wid: u64, seq: u64, record: WalRecord) {
        let Role::Leader { follower } = self.role else { unreachable!("checked by callers") };
        match follower {
            None => {
                let ok = Message::WriteOk { wid, seq };
                self.transport.send(self.node, self.coord, &ok);
            }
            Some(f) => {
                self.unreplicated.push(record);
                if self.replicate_until_acked(f, seq) {
                    let ok = Message::WriteOk { wid, seq };
                    self.transport.send(self.node, self.coord, &ok);
                } else {
                    self.refuse(wid, RefusalReason::ReplicationUnavailable);
                }
            }
        }
    }

    /// Sends the unacknowledged log suffix until the follower confirms
    /// everything up to `target_seq`, with jittered-backoff resends.
    /// Returns false when the retry budget runs out (write not acked; the
    /// suffix stays queued and rides along with the next write).
    fn replicate_until_acked(&mut self, follower: NodeId, target_seq: u64) -> bool {
        let mut backoff =
            Backoff::new(self.cfg.backoff, self.cfg.seed ^ (self.node as u64) ^ target_seq);
        for attempt in 0..=self.cfg.replication_retries {
            if self.transport.is_shutdown() || self.transport.is_crashed(self.node) {
                return false;
            }
            let batch = Message::Replicate { records: self.unreplicated.clone() };
            self.transport.send(self.node, follower, &batch);
            let deadline = self.clock.now() + self.cfg.ack_timeout;
            loop {
                // One clock sample decides both expiry and the wait span.
                let now = self.clock.now();
                if now >= deadline {
                    break;
                }
                match self.transport.recv_timeout(self.node, deadline - now) {
                    None => {}
                    Some((_, Message::Ack { seq })) => {
                        self.unreplicated.retain(|r| r.seq() > seq);
                        if seq >= target_seq {
                            return true;
                        }
                    }
                    Some(other) => self.pending.push_back(other),
                }
            }
            if attempt < self.cfg.replication_retries {
                self.clock.sleep(backoff.next_delay());
            }
        }
        false
    }
}

impl std::fmt::Debug for ShardWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardWorker")
            .field("node", &self.node)
            .field("role", &self.role)
            .finish()
    }
}
