//! Sharded serving that survives a hostile network.
//!
//! This crate stretches the repository's single-node serving layer
//! ([`repose_service`]) across shard boundaries: a coordinator scatters
//! each query to shard workers that own disjoint subsets of the data,
//! hits stream back as they are found, and the coordinator's merged
//! k-th-distance bound is broadcast back out so a hit found on one shard
//! prunes every other — the in-process shared-threshold design
//! ([`repose_rptrie::SharedTopK`]) carried over an actual wire protocol.
//! The answer stays **bitwise exact** (same distance multiset, same
//! tie-breaks) as the single-node path whenever every shard answers, and
//! degrades *visibly* (never silently) when shards fail past their retry
//! budgets.
//!
//! The pieces, bottom-up:
//!
//! * [`protocol`] — the length-prefixed, checksummed binary frames
//!   ([`Message`]) everything speaks; f64 distances travel as IEEE bit
//!   patterns so exactness survives serialization.
//! * [`fault`] — [`NetFaultPlan`], deterministic network fault injection
//!   (drop/delay/duplicate/reorder/partition/crash) armed in code or via
//!   `REPOSE_NETFAULTS`, the network sibling of the durability layer's
//!   `REPOSE_FAILPOINTS`.
//! * [`transport`] — the in-process [`Loopback`] transport: real
//!   serialization on every send, per-node inboxes, and the fault plan
//!   applied at the link layer.
//! * [`worker`] — [`ShardWorker`], one node's message loop: scatter-side
//!   query execution with mid-flight bound folding, WAL-backed writes,
//!   leader→follower delta-log replication (log-before-ack), heartbeats,
//!   and follower self-promotion.
//! * [`coordinator`] — [`ShardCluster`], the client-facing object:
//!   scatter-gather with per-shard deadlines, jittered-backoff retries,
//!   latency-percentile hedging, write failover, and honest degradation
//!   accounting ([`ShardOutcome`]).

pub mod coordinator;
pub mod fault;
pub mod protocol;
pub mod transport;
pub mod worker;

pub use coordinator::{
    ShardCluster, ShardClusterConfig, ShardOutcome, WriteFailed, WriteOutcome,
};
pub use fault::{NetFault, NetFaultPlan, NetSpecError, NetSpecReason};
pub use protocol::{Message, ProtocolError, RefusalReason};
pub use transport::{Loopback, NetStats, NodeId, Transport};
pub use worker::{Role, ShardWorker, WorkerConfig};
